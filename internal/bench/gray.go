package bench

import (
	"bytes"
	"fmt"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/faults"
	"mcio/internal/health"
	"mcio/internal/integrity"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// ChaosCampaigns lists every `mcio chaos` campaign, in display order —
// the single source of truth for the subcommand's usage text and its
// unknown-campaign error, exactly as LedgerExperiments is for bench.
var ChaosCampaigns = []string{"corruption", "gray"}

// graySalt decorrelates the gray campaign's per-op seed stream from the
// corruption soak's, so `chaos -gray -seed 1` and `chaos -seed 1` draw
// independent workloads.
const graySalt = 0x677261796661696c // "grayfail"

// GrayConfig parameterizes a gray-failure campaign (mcio chaos -gray).
type GrayConfig struct {
	// Seed makes the whole campaign — workloads, gray-fault schedules,
	// corruption schedules, hedge picks — a pure function of one number.
	Seed uint64
	// Ops is how many randomized operations the campaign runs. Each op
	// prices a static and an adaptive run under the same gray schedule,
	// replans through the health-driven degradation controller, and then
	// executes a real hedged write/read with silent corruption.
	Ops int
	// Rate scales the gray-fault and silent-corruption event rates
	// (1 ≈ a couple of events per entity per op horizon); 0 disables
	// injection, leaving only the clean-path hedging checks.
	Rate float64
	// Repair enables the detect→re-request→rewrite path. Hedging only
	// engages with repair on (a hedged duplicate rides the re-request
	// protocol), so Repair=false reduces the byte-level section to pure
	// detection accounting.
	Repair bool
	// Timeline, when non-nil, records the pinned duel's adaptive run —
	// utilization series plus the fault/suspicion/breaker journal — so
	// `mcio profile gray` can render onset → detection → reaction.
	Timeline *timeline.Recorder
	// Obs, when non-nil, receives the campaign counters (chaos.gray_*,
	// health.*, integrity.*) and the planners' metrics.
	Obs *obs.Observer
}

// GrayReport is the outcome of a gray campaign: what the adaptive
// policy did (suspicion, proactive failover, breakers, hedging), what
// the integrity layer saw, the pinned static-vs-adaptive duel, and
// every invariant violation found (empty Violations is the pass
// condition).
type GrayReport struct {
	Ops int

	// Cost-level adaptive accounting, summed over ops and the duel.
	SuspectEvents      int
	ProactiveFailovers int
	BreakerOpens       int
	BreakerFastFails   int
	FlakyDrops         int
	LeakedNodes        int
	HedgedMessages     int
	HedgedBytes        int64
	DedupedBytes       int64
	// RungTransitions counts degradation-controller rung changes caused
	// by health state (the initial baseline plan is not counted).
	RungTransitions int

	// The pinned duel: a degrading OST plus a straggling aggregator
	// host on a fixed machine. The adaptive run must be strictly faster.
	DuelStaticSeconds   float64
	DuelAdaptiveSeconds float64
	// Detection-lag decomposition of the duel's slowed OST, from its
	// timeline journal: fault onset → first suspicion crossing → first
	// reaction (breaker open), in simulated seconds. -1 marks a stage
	// that never fired (itself a violation — the duel must detect).
	DuelOnsetToSuspectSeconds  float64
	DuelOnsetToReactionSeconds float64

	// Byte-level hedged-execution accounting.
	InjectedFlips     int
	InjectedTorn      int
	Detected          int64
	Repaired          int64
	Unrepaired        int64
	HedgedChunks      int64
	DedupedChunkBytes int64

	Violations []string
}

// Injected returns the total silent corruptions actually injected into
// the byte-level section.
func (r *GrayReport) Injected() int { return r.InjectedFlips + r.InjectedTorn }

// Undetected returns injected corruptions the integrity layer never
// flagged — held at zero by the campaign's detection invariant.
func (r *GrayReport) Undetected() int {
	u := r.Injected() - int(r.Detected)
	if u < 0 {
		u = 0
	}
	return u
}

// String renders the campaign summary.
func (r *GrayReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gray: %d ops\n", r.Ops)
	fmt.Fprintf(&b, "adaptive: %d suspect events, %d proactive failovers, %d breaker opens, %d fast-fails, %d rung transitions\n",
		r.SuspectEvents, r.ProactiveFailovers, r.BreakerOpens, r.BreakerFastFails, r.RungTransitions)
	fmt.Fprintf(&b, "hedging: %d messages (%d bytes priced, %d deduped), %d real chunks (%d duplicate bytes discarded)\n",
		r.HedgedMessages, r.HedgedBytes, r.DedupedBytes, r.HedgedChunks, r.DedupedChunkBytes)
	fmt.Fprintf(&b, "gray load: %d flaky drops, %d leaked nodes\n", r.FlakyDrops, r.LeakedNodes)
	fmt.Fprintf(&b, "duel: static %.4fs vs adaptive %.4fs\n", r.DuelStaticSeconds, r.DuelAdaptiveSeconds)
	fmt.Fprintf(&b, "duel detection lag: onset->suspect %.4fs, onset->reaction %.4fs\n",
		r.DuelOnsetToSuspectSeconds, r.DuelOnsetToReactionSeconds)
	fmt.Fprintf(&b, "corruptions: %d injected (%d bit flips, %d torn writes), %d detected, %d repaired, %d unrepaired, %d undetected\n",
		r.Injected(), r.InjectedFlips, r.InjectedTorn, r.Detected, r.Repaired, r.Unrepaired, r.Undetected())
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "invariants: all held\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATED\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// grayAdaptive is the campaign's adaptive policy: default detector and
// breakers, with a short warmup and hedge window so the small per-op
// workloads cross them. Deterministic — the campaign report is a pure
// function of its config.
func grayAdaptive() *collio.Adaptive {
	ad := collio.NewAdaptive()
	ad.Detector = health.NewDetector(health.Config{Warmup: 2})
	ad.HedgeMinSamples = 8
	return ad
}

// Gray runs a seeded gray-failure campaign. Every operation draws a
// fresh workload and gray-fault schedule (OST slowdowns, flaky NICs,
// memory leaks) and checks the invariant battery:
//
//   - pricing: the adaptive run moves exactly the user bytes the static
//     run moves — suspicion, breakers and hedging change placement and
//     timing, never payload — and every hedged byte is deduplicated
//     (DedupedBytes == HedgedBytes, the zero-double-count invariant);
//   - health-driven planning: replanning through the degradation
//     controller after the run never fails and still tiles the request
//     union exactly once, with rung transitions recorded;
//   - real bytes: a hedged verified write/read under silent corruption
//     detects every injected corruption, conserves written bytes, and
//     (with repair on) leaves the file byte-identical to the fault-free
//     oracle — hedged duplicates are verified and discarded, never
//     scattered into user buffers.
//
// The campaign ends with the pinned duel — a degrading OST plus a
// straggling aggregator host — where the adaptive run must be strictly
// faster than the static retry-only baseline. Violations are collected,
// not fatal. The campaign is deterministic: same config, same report.
func Gray(cfg GrayConfig) (*GrayReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 20
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("bench: negative gray fault rate %g", cfg.Rate)
	}

	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = 64
	fsys, err := pfs.NewFileSystem(fsCfg)
	if err != nil {
		return nil, err
	}

	rep := &GrayReport{Ops: cfg.Ops}
	fail := func(op int, format string, args ...any) {
		where := fmt.Sprintf("op %d", op)
		if op < 0 {
			where = "duel"
		}
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%s: %s", where, fmt.Sprintf(format, args...)))
	}

	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	s := core.New()

	for op := 0; op < cfg.Ops; op++ {
		opSeed := chaosMix(cfg.Seed^graySalt, op)
		r := stats.NewRNG(opSeed)

		// Machine for this operation: several ranks per node so groups
		// span hosts and a straggling node hurts more than one rank.
		ranks := 6 + r.Intn(7)
		perNode := 2 + r.Intn(2)
		topo, err := mpi.BlockTopology(ranks, perNode)
		if err != nil {
			return nil, err
		}
		mc := machine.Testbed640()
		mc.Nodes = topo.Nodes()
		buf := int64(1 << (12 + r.Intn(3)))
		params := collio.DefaultParams(buf)
		params.MsgInd = 4 * buf
		params.MsgGroup = 16 * buf
		params.MemMin = buf / 2
		avail := make([]int64, topo.Nodes())
		for i := range avail {
			avail[i] = mc.MemPerNode
		}
		ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail,
			FS: fsCfg, Params: params, Obs: o}

		// Cost-level workload: contiguous per-rank regions, big enough
		// that the run spans several rounds of the gray horizon.
		per := int64(1<<14 + r.Intn(1<<15))
		reqs := make([]collio.RankRequest, ranks)
		for i := range reqs {
			reqs[i] = collio.RankRequest{Rank: i,
				Extents: []pfs.Extent{{Offset: int64(i) * per, Length: per}}}
		}

		refPlan, err := s.Plan(ctx, reqs)
		if err != nil {
			fail(op, "planning failed: %v", err)
			continue
		}
		ref, err := collio.Cost(ctx, refPlan, reqs, collio.Write, sim.DefaultOptions())
		if err != nil {
			fail(op, "reference pricing failed: %v", err)
			continue
		}
		horizon := ref.Seconds * 4
		spec := faults.DefaultSpec(opSeed, horizon).WithRate(0).WithGray(cfg.Rate)

		runCost := func(ad *collio.Adaptive) (*collio.FaultResult, error) {
			plan, state, err := s.PlanWithState(ctx, reqs)
			if err != nil {
				return nil, err
			}
			fplan, err := spec.Generate(topo.Nodes(), fsCfg.Targets)
			if err != nil {
				return nil, err
			}
			inj := faults.NewInjector(fplan)
			handler := &core.Failover{State: state, Detect: spec.DetectSeconds}
			if ad == nil {
				return collio.CostWithFaults(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler)
			}
			return collio.CostAdaptive(ctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler, ad)
		}

		static, err := runCost(nil)
		if err != nil {
			fail(op, "static run failed: %v", err)
			continue
		}
		ad := grayAdaptive()
		// The controller shares the run's detector, so the post-run
		// replan sees exactly the suspicion the priced run raised.
		dc := core.NewDegradationController(s, ad.Detector)
		if _, err := dc.Plan(ctx, reqs); err != nil {
			fail(op, "baseline controller plan failed: %v", err)
			continue
		}
		adaptive, err := runCost(ad)
		if err != nil {
			fail(op, "adaptive run failed: %v", err)
			continue
		}

		// Invariant: policy never changes payload — same user bytes.
		if adaptive.UserBytes != static.UserBytes {
			fail(op, "user bytes diverged: adaptive %d vs static %d",
				adaptive.UserBytes, static.UserBytes)
		}
		// Invariant: zero double-counted hedged bytes — every byte a
		// hedge duplicated was deduplicated.
		if adaptive.DedupedBytes != adaptive.HedgedBytes {
			fail(op, "hedge accounting: %d bytes hedged, %d deduped",
				adaptive.HedgedBytes, adaptive.DedupedBytes)
		}

		// Health-driven replan: masking suspected nodes must still
		// produce a valid tiling (or a lawful independent fallback).
		dp, err := dc.Plan(ctx, reqs)
		if err != nil {
			fail(op, "health-driven replan failed: %v", err)
		} else if !dp.Independent {
			if err := dp.Plan.Validate(reqs); err != nil {
				fail(op, "health-masked plan tiling violated: %v", err)
			}
		}
		rep.RungTransitions += len(dc.Transitions()) - 1

		rep.SuspectEvents += adaptive.SuspectEvents
		rep.ProactiveFailovers += adaptive.ProactiveFailovers
		rep.BreakerOpens += adaptive.BreakerOpens
		rep.BreakerFastFails += adaptive.BreakerFastFails
		rep.FlakyDrops += adaptive.FlakyDrops
		rep.LeakedNodes += adaptive.LeakedNodes
		rep.HedgedMessages += adaptive.HedgedMessages
		rep.HedgedBytes += adaptive.HedgedBytes
		rep.DedupedBytes += adaptive.DedupedBytes

		// Byte-level section: a real hedged write/read under silent
		// corruption, against the fault-free oracle.
		if err := grayExecOp(ctx, s, fsys, o, rep, fail, op, opSeed, r, cfg); err != nil {
			return nil, err
		}
	}
	fsys.SetCorrupter(nil)

	// Campaign-level engagement check: with repair on, the Every=2
	// hedger must have hedged real chunks somewhere — a silently inert
	// hedge path would otherwise pass every per-op invariant.
	if cfg.Repair && rep.HedgedChunks == 0 {
		fail(-1, "hedged execution never engaged across %d ops", cfg.Ops)
	}

	if err := grayDuel(rep, fail, cfg.Timeline); err != nil {
		return nil, err
	}

	o.Counter("chaos.gray_ops").Add(int64(cfg.Ops))
	o.Counter("chaos.gray_suspect_events").Add(int64(rep.SuspectEvents))
	o.Counter("chaos.gray_proactive_failovers").Add(int64(rep.ProactiveFailovers))
	o.Counter("chaos.gray_hedged_bytes").Add(rep.HedgedBytes)
	o.Counter("chaos.gray_deduped_bytes").Add(rep.DedupedBytes)
	o.Counter("chaos.gray_corruptions_injected").Add(int64(rep.Injected()))
	o.Counter("chaos.gray_corruptions_detected").Add(rep.Detected)
	o.Counter("chaos.invariant_violations").Add(int64(len(rep.Violations)))
	return rep, nil
}

// grayExecOp runs one real hedged write/read with silent corruption and
// checks the byte-level invariant battery: detection of every injected
// corruption, bytes-written conservation, and (with repair on) oracle
// byte-identity with every hedged duplicate discarded.
func grayExecOp(ctx *collio.Context, s *core.Strategy, fsys *pfs.FileSystem,
	o *obs.Observer, rep *GrayReport, fail func(int, string, ...any),
	op int, opSeed uint64, r *stats.RNG, cfg GrayConfig) error {
	ranks := ctx.Topo.Size()

	// Small permuted-block workload (the shuffle moves real bytes).
	blocks := 12 + r.Intn(9)
	blockLen := int64(24 + r.Intn(81))
	reqs := make([]collio.RankRequest, ranks)
	for i := range reqs {
		reqs[i].Rank = i
	}
	for i, b := range r.Perm(blocks) {
		if r.Float64() < 0.1 {
			continue // hole
		}
		ext := pfs.Extent{Offset: int64(b) * blockLen, Length: blockLen}
		reqs[i%ranks].Extents = append(reqs[i%ranks].Extents, ext)
	}

	spec := faults.DefaultSpec(opSeed, 1).WithRate(0).WithCorruption(cfg.Rate)
	fplan, err := spec.Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
	if err != nil {
		return err
	}
	ranksByNode := make([][]int, ctx.Topo.Nodes())
	for rank := 0; rank < ranks; rank++ {
		n := ctx.Topo.NodeOf(rank)
		ranksByNode[n] = append(ranksByNode[n], rank)
	}
	corr := faults.NewCorrupter(fplan, ranksByNode)
	fsys.SetCorrupter(corr)
	chk := integrity.NewChecker(integrity.Config{Seed: opSeed, Repair: cfg.Repair, MaxRepairs: 32})
	chk.SetObserver(o)
	hed := &collio.Hedger{Seed: int64(opSeed), Every: 2}

	plan, err := s.Plan(ctx, reqs)
	if err != nil {
		fail(op, "byte-level planning failed: %v", err)
		return nil
	}
	if err := plan.Validate(reqs); err != nil {
		fail(op, "byte-level plan tiling violated: %v", err)
		return nil
	}

	data := make([]collio.RankData, ranks)
	var size int64
	for i := range data {
		buf := make([]byte, reqs[i].Bytes())
		fillChaosPattern(op, i, buf)
		data[i] = collio.RankData{Req: reqs[i], Buf: buf}
		for _, e := range pfs.NormalizeExtents(reqs[i].Extents) {
			if e.End() > size {
				size = e.End()
			}
		}
	}
	oracle := make([]byte, size)
	for i := range data {
		var pos int64
		for _, e := range pfs.NormalizeExtents(reqs[i].Extents) {
			copy(oracle[e.Offset:e.End()], data[i].Buf[pos:pos+e.Length])
			pos += e.Length
		}
	}

	file := fsys.Open(fmt.Sprintf("gray-%d", op))
	writtenBefore := sumI64(fsys.Stats().Written())
	if err := collio.ExecVerifiedHedged(ctx, plan, data, file, collio.Write, chk, corr, hed); err != nil {
		fail(op, "hedged write failed: %v", err)
		return nil
	}

	// Invariant: hedged duplicates are messages, never writes — written
	// bytes stay the plan's bytes plus repair rewrites.
	writtenDelta := sumI64(fsys.Stats().Written()) - writtenBefore
	if want := plan.TotalBytes() + chk.Report().RewrittenBytes; writtenDelta != want {
		fail(op, "bytes-written conservation violated: delta %d != planned %d + rewritten %d",
			writtenDelta, plan.TotalBytes(), chk.Report().RewrittenBytes)
	}

	readData := make([]collio.RankData, ranks)
	for i := range readData {
		readData[i] = collio.RankData{Req: reqs[i], Buf: make([]byte, len(data[i].Buf))}
	}
	if err := collio.ExecVerifiedHedged(ctx, plan, readData, file, collio.Read, chk, corr, hed); err != nil {
		fail(op, "hedged read failed: %v", err)
		return nil
	}

	crep := chk.Report()
	crep.JournalInto(cfg.Timeline.J(), fmt.Sprintf("op %d", op))
	injected := corr.Injected()
	// Invariant: every injected corruption is detected — including
	// fresh flips landing on hedged duplicates.
	if int(crep.Detected) != injected {
		fail(op, "detection mismatch: %d corruptions injected, %d detected", injected, crep.Detected)
	}
	if cfg.Repair || injected == 0 {
		if crep.Unrepaired != 0 {
			fail(op, "%d corruptions unrepaired with repair enabled", crep.Unrepaired)
		}
		got := make([]byte, size)
		if _, err := file.ReadAt(got, 0); err != nil {
			fail(op, "oracle readback failed: %v", err)
		} else if !bytes.Equal(got, oracle) {
			fail(op, "file contents differ from fault-free oracle under gray hedging")
		}
		for i := range readData {
			var pos int64
			for _, e := range pfs.NormalizeExtents(reqs[i].Extents) {
				if !bytes.Equal(readData[i].Buf[pos:pos+e.Length], oracle[e.Offset:e.End()]) {
					fail(op, "rank %d read differs from oracle at extent [%d,%d)", i, e.Offset, e.End())
					return nil
				}
				pos += e.Length
			}
		}
	}

	rep.InjectedFlips += corr.InjectedFlips()
	rep.InjectedTorn += corr.InjectedTorn()
	rep.Detected += crep.Detected
	rep.Repaired += crep.Repaired
	rep.Unrepaired += crep.Unrepaired
	rep.HedgedChunks += hed.Hedged()
	rep.DedupedChunkBytes += hed.DedupedBytes()
	return nil
}

// grayDuel runs the pinned acceptance scenario on a fixed machine: a
// step-degrading OST and a straggling aggregator host, onset after the
// detector has a healthy baseline. The adaptive run must move the same
// user bytes, raise suspicion, fail over proactively, and finish in
// strictly less simulated time than the static retry-only baseline.
//
// The adaptive run always records into a timeline (the caller's rec,
// or a private one): the slowed OST's journal yields the onset →
// suspicion → reaction detection-lag decomposition the report and the
// ledger carry. The static run never records, so the overlay shows
// exactly what the adaptive policy saw and did.
func grayDuel(rep *GrayReport, fail func(int, string, ...any), rec *timeline.Recorder) error {
	if rec == nil {
		rec = timeline.NewRecorder(0, 0)
	}
	topo, err := mpi.BlockTopology(12, 3)
	if err != nil {
		return err
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	buf := int64(1 << 16)
	params := collio.DefaultParams(buf)
	params.MsgInd = 4 * buf
	params.MsgGroup = 16 * buf
	params.MemMin = buf / 2
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		avail[i] = mc.MemPerNode
	}
	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = 64
	ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail, FS: fsCfg, Params: params}
	reqs := make([]collio.RankRequest, 12)
	for i := range reqs {
		reqs[i] = collio.RankRequest{Rank: i,
			Extents: []pfs.Extent{{Offset: int64(i) << 18, Length: 1 << 18}}}
	}

	s := core.New()
	refPlan, err := s.Plan(ctx, reqs)
	if err != nil {
		return err
	}
	ref, err := collio.Cost(ctx, refPlan, reqs, collio.Write, sim.DefaultOptions())
	if err != nil {
		return err
	}
	horizon := ref.Seconds * 6
	onset := ref.Seconds / 3
	spec := faults.DefaultSpec(11, horizon).WithRate(0)

	run := func(ad *collio.Adaptive) (*collio.FaultResult, error) {
		// Only the adaptive run records: a shallow context copy keeps
		// the static baseline recorder-free without sharing state.
		cctx := *ctx
		if ad != nil {
			cctx.Timeline = rec
		}
		plan, state, err := s.PlanWithState(&cctx, reqs)
		if err != nil {
			return nil, err
		}
		victim := plan.Domains[0].AggNode
		sched := &faults.Plan{Spec: spec, Events: []faults.Event{
			{Kind: faults.Straggler, Time: onset, Node: victim, Target: -1,
				Duration: horizon, Severity: 8},
			{Kind: faults.OSTSlowdown, Time: onset, Node: -1, Target: 0,
				Duration: horizon, Severity: 5, Profile: faults.ProfileStep},
		}}
		inj := faults.NewInjector(sched)
		handler := &core.Failover{State: state, Detect: spec.DetectSeconds}
		if ad == nil {
			return collio.CostWithFaults(&cctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler)
		}
		return collio.CostAdaptive(&cctx, plan, reqs, collio.Write, sim.DefaultOptions(), inj, handler, ad)
	}

	static, err := run(nil)
	if err != nil {
		return err
	}
	adaptive, err := run(grayAdaptive())
	if err != nil {
		return err
	}
	rep.DuelStaticSeconds = static.Seconds
	rep.DuelAdaptiveSeconds = adaptive.Seconds
	rep.DuelOnsetToSuspectSeconds, rep.DuelOnsetToReactionSeconds = -1, -1
	for _, l := range timeline.DetectionLags(rec.J().Events()) {
		if l.Entity == timeline.Ent("ost", 0) {
			rep.DuelOnsetToSuspectSeconds = l.OnsetToSuspect()
			rep.DuelOnsetToReactionSeconds = l.OnsetToReact()
		}
	}
	if rep.DuelOnsetToSuspectSeconds < 0 || rep.DuelOnsetToReactionSeconds < 0 {
		fail(-1, "duel detection lag unmeasurable: onset->suspect %.4g, onset->reaction %.4g",
			rep.DuelOnsetToSuspectSeconds, rep.DuelOnsetToReactionSeconds)
	}
	rep.SuspectEvents += adaptive.SuspectEvents
	rep.ProactiveFailovers += adaptive.ProactiveFailovers
	rep.BreakerOpens += adaptive.BreakerOpens
	rep.BreakerFastFails += adaptive.BreakerFastFails

	if adaptive.UserBytes != static.UserBytes {
		fail(-1, "user bytes diverged: adaptive %d vs static %d", adaptive.UserBytes, static.UserBytes)
	}
	if adaptive.SuspectEvents == 0 {
		fail(-1, "gray schedule raised no suspicion")
	}
	if adaptive.ProactiveFailovers == 0 {
		fail(-1, "suspected straggler triggered no proactive failover")
	}
	if adaptive.Seconds >= static.Seconds {
		fail(-1, "adaptive (%.4fs) not strictly faster than static (%.4fs)",
			adaptive.Seconds, static.Seconds)
	}
	return nil
}
