package bench

import (
	"fmt"
	"sort"
	"strings"

	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
)

// ObserveFigures lists the figure workloads Observe can instrument, in
// display order — the single source of truth for the `mcio observe`
// usage text and the unknown-figure error.
var ObserveFigures = []string{"fig6", "fig7", "fig8"}

// ObserveResult is one instrumented run of a figure workload: both
// strategies planned and priced with a shared Observer collecting metrics
// and simulated-time spans, plus a human-readable summary.
type ObserveResult struct {
	Obs     *obs.Observer
	Summary string
}

// Observe runs one sweep point of a figure's workload (fig6, fig7 or
// fig8) under full observability: both strategies plan against the same
// machine state, the cost engine prices them with round tracing on, and
// every layer (planner, sim engine, memory model) reports into a fresh
// Observer. The returned observer holds the metrics snapshot and the
// Chrome-traceable spans; the summary prints round counts, elapsed
// simulated time and the per-round bottleneck tally for each strategy.
//
// memMB is the paper-scale mean memory per aggregator; 0 picks 16 MB, a
// point where the baseline pages and the memory-conscious strategy
// adapts — the contrast the trace is for.
func Observe(figure string, scale int64, seed uint64, memMB int, op collio.Op) (*ObserveResult, error) {
	if memMB <= 0 {
		memMB = 16
	}
	var (
		cfg  Config
		wl   Workload
		name string
		err  error
	)
	switch figure {
	case "fig6":
		cfg = Fig6Config(scale, seed)
		wl, name, err = Fig6Workload(cfg)
		if err != nil {
			return nil, err
		}
	case "fig7":
		cfg = Fig7Config(scale, seed)
		wl, name = Fig7Workload(cfg)
	case "fig8":
		cfg = Fig8Config(scale, seed)
		wl, name = Fig8Workload(cfg)
	default:
		return nil, cliutil.UnknownChoice("figure", figure, ObserveFigures)
	}
	cfg.MemMB = []int{memMB}
	reqs, err := wl.Requests()
	if err != nil {
		return nil, err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(memMB)*MB), zs, wl.TotalBytes())
	if err != nil {
		return nil, err
	}
	ctx.Obs = obs.New()
	opt := sim.DefaultOptions()
	opt.Trace = true
	opt.Overlap = cfg.Overlap

	strategies := []collio.Strategy{twophase.New(), core.New()}
	// The tracer assigns process ids in registration order; registering
	// both strategies up front pins the ids, so the parallel fan-out
	// below exports a byte-identical trace. Within one strategy all spans
	// come from its own goroutine, and same-(PID,TID) spans share a
	// tracer shard, so their order is deterministic too.
	for _, s := range strategies {
		ctx.Obs.Tracer().PID(s.Name())
	}
	summaries := make([]string, len(strategies))
	err = ForEach(len(strategies), func(i int) error {
		s := strategies[i]
		plan, err := s.Plan(ctx, reqs)
		if err != nil {
			return err
		}
		if err := plan.Validate(reqs); err != nil {
			return err
		}
		res, err := collio.Cost(ctx, plan, reqs, op, opt)
		if err != nil {
			return err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d domains, %d rounds, %.4fs simulated (%.1f MB/s)\n",
			s.Name(), len(plan.Domains), len(res.Trace), res.Seconds,
			float64(wl.TotalBytes())/res.Seconds/1e6)
		for _, line := range bindingTally(res.Trace) {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		fmt.Fprintf(&b, "  %s\n", blameLine(res.Trace, res.Seconds, opt.Overlap))
		summaries[i] = b.String()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "observe %s: %s, %s, %d MB per aggregator\n", figure, name, op, memMB)
	for _, s := range summaries {
		b.WriteString(s)
	}
	return &ObserveResult{Obs: ctx.Obs, Summary: b.String()}, nil
}

// blameLine renders a one-line critical-path breakdown of a traced run:
// each phase's share of the simulated wall time, largest first.
func blameLine(tr []sim.TraceEntry, wall float64, overlap bool) string {
	b := analyze.BlameFromTrace(tr, overlap)
	if rest := wall - b.Total(); rest > 1e-12 {
		b[analyze.PhaseOther] += rest
	}
	var parts []string
	for _, phase := range analyze.Phases() {
		v := b[phase]
		if v <= 0 || wall <= 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.1f%%", phase, v/wall*100))
	}
	return "critical path: " + strings.Join(parts, ", ")
}

// bindingTally counts which resource bound each traced round, rendered as
// sorted "bound by X in N rounds" lines.
func bindingTally(tr []sim.TraceEntry) []string {
	counts := map[string]int{}
	for _, e := range tr {
		counts[e.Binding.String()]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("bound by %s in %d round(s)", k, counts[k])
	}
	return out
}
