package bench

import (
	"reflect"
	"strings"
	"testing"

	"mcio/internal/obs"
)

// The repair-on acceptance campaign: a seeded soak must inject real
// corruption, detect all of it, repair all of it, and hold every
// invariant — including byte-identity of each file against its
// fault-free oracle (checked inside Chaos after every operation).
func TestChaosRepairOnCampaignClean(t *testing.T) {
	rep, err := Chaos(ChaosConfig{Seed: 1, Ops: 40, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Injected() == 0 || rep.InjectedFlips == 0 || rep.InjectedTorn == 0 {
		t.Fatalf("campaign injected nothing: %+v", rep)
	}
	if rep.Undetected() != 0 {
		t.Fatalf("%d corruptions went undetected", rep.Undetected())
	}
	if rep.Unrepaired != 0 {
		t.Fatalf("%d corruptions unrepaired with repair on", rep.Unrepaired)
	}
	if int(rep.Detected) != rep.Injected() {
		t.Fatalf("detected %d of %d injected", rep.Detected, rep.Injected())
	}
	if rep.Repaired == 0 || rep.RewrittenBytes == 0 {
		t.Fatalf("repair path idle: %+v", rep)
	}
	// The soak must exercise the degradation ladder too.
	if rep.ShrunkOps+rep.IndependentOps == 0 {
		t.Fatal("no operation exercised the degradation ladder")
	}
	if rep.CollectiveOps == 0 {
		t.Fatal("no operation ran the full collective path")
	}
	if s := rep.String(); !strings.Contains(s, "all held") {
		t.Fatalf("summary %q does not report clean invariants", s)
	}
}

// The repair-off acceptance campaign: every injected corruption must be
// detected (exactly — the provable-detection guarantee), and every
// detection accounted unrepaired.
func TestChaosRepairOffDetectsEveryInjection(t *testing.T) {
	rep, err := Chaos(ChaosConfig{Seed: 7, Ops: 40, Rate: 4, Repair: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Injected() == 0 {
		t.Fatal("campaign injected nothing")
	}
	if int(rep.Detected) != rep.Injected() {
		t.Fatalf("detected %d of %d injected corruptions", rep.Detected, rep.Injected())
	}
	if rep.Repaired != 0 || rep.RewrittenBytes != 0 {
		t.Fatalf("repair ran with repair disabled: %+v", rep)
	}
	if rep.Unrepaired != rep.Detected {
		t.Fatalf("unrepaired %d != detected %d", rep.Unrepaired, rep.Detected)
	}
}

func TestChaosDeterministic(t *testing.T) {
	a, err := Chaos(ChaosConfig{Seed: 11, Ops: 10, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chaos(ChaosConfig{Seed: 11, Ops: 10, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different campaigns:\n%+v\n%+v", a, b)
	}
	c, err := Chaos(ChaosConfig{Seed: 12, Ops: 10, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestChaosZeroRateIsClean(t *testing.T) {
	rep, err := Chaos(ChaosConfig{Seed: 3, Ops: 10, Rate: 0, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected() != 0 || rep.Detected != 0 {
		t.Fatalf("rate 0 injected/detected corruption: %+v", rep)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("rate 0 violated invariants:\n%s", strings.Join(rep.Violations, "\n"))
	}
}

func TestChaosExportsCounters(t *testing.T) {
	o := obs.New()
	rep, err := Chaos(ChaosConfig{Seed: 5, Ops: 10, Rate: 2, Repair: true, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.Counter("chaos.ops").Value(); got != 10 {
		t.Fatalf("chaos.ops = %d, want 10", got)
	}
	if got := o.Counter("chaos.corruptions_injected").Value(); got != int64(rep.Injected()) {
		t.Fatalf("chaos.corruptions_injected = %d, want %d", got, rep.Injected())
	}
	if got := o.Counter("chaos.invariant_violations").Value(); got != int64(len(rep.Violations)) {
		t.Fatalf("chaos.invariant_violations = %d, want %d", got, len(rep.Violations))
	}
	if got := o.Counter("integrity.corruptions_detected").Value(); got != rep.Detected {
		t.Fatalf("integrity.corruptions_detected = %d, want %d", got, rep.Detected)
	}
}
