package bench

import (
	"fmt"
	"strings"
	"testing"
)

func TestElide(t *testing.T) {
	cases := []struct {
		n, head, elided, tail int
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 0},
		{5, 5, 0, 0},
		// n == head+tail+1: showing all 6 rounds beats a marker that
		// stands in for a single hidden round.
		{6, 6, 0, 0},
		{7, 3, 2, 2},
		{100, 3, 95, 2},
	}
	for _, c := range cases {
		head, elided, tail := elide(c.n)
		if head != c.head || elided != c.elided || tail != c.tail {
			t.Errorf("elide(%d) = (%d, %d, %d), want (%d, %d, %d)",
				c.n, head, elided, tail, c.head, c.elided, c.tail)
		}
		if head+elided+tail != c.n {
			t.Errorf("elide(%d) loses rounds: %d+%d+%d", c.n, head, elided, tail)
		}
		if elided == 0 && tail != 0 {
			t.Errorf("elide(%d): tail %d would overlap the full head", c.n, tail)
		}
	}
}

func TestRoundTraceRendersBinding(t *testing.T) {
	out, err := RoundTrace(testScale, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bound:") {
		t.Fatalf("trace lines miss the binding:\n%s", out)
	}
	if !strings.Contains(out, "more rounds") && strings.Count(out, "round ") > 12 {
		t.Fatalf("long trace not elided:\n%s", out)
	}
}

// TestRoundTraceElisionCountsConsistent checks the rendered marker: for
// each strategy section, shown rounds plus the "... N more rounds ..."
// count must equal the section's declared round total — elision hides
// lines, never rounds.
func TestRoundTraceElisionCountsConsistent(t *testing.T) {
	out, err := RoundTrace(testScale, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	var declared, shown, elided int
	checkSection := func() {
		if declared == 0 {
			return
		}
		if shown+elided != declared {
			t.Errorf("section declares %d rounds but renders %d shown + %d elided:\n%s",
				declared, shown, elided, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.Contains(trimmed, " rounds, ") && strings.Contains(trimmed, "s total"):
			checkSection() // close the previous strategy's section
			shown, elided = 0, 0
			if _, err := fmt.Sscanf(trimmed[strings.Index(trimmed, ": ")+2:], "%d rounds", &declared); err != nil {
				t.Fatalf("cannot parse round total from %q: %v", trimmed, err)
			}
		case strings.HasPrefix(trimmed, "round "):
			shown++
		case strings.HasPrefix(trimmed, "... "):
			if _, err := fmt.Sscanf(trimmed, "... %d more rounds ...", &elided); err != nil {
				t.Fatalf("cannot parse elision marker %q: %v", trimmed, err)
			}
		}
	}
	checkSection()
}
