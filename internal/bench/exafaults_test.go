package bench

import (
	"reflect"
	"strings"
	"testing"
)

// TestFaultedExaEnginesMatchSmall shrinks the fig-exa-faults grid to a
// byte-path-feasible size and cross-checks that both engines price
// every cell — crash remerges, stalls, stragglers and all — bit for
// bit. Like TestEnginesMatchAllFigures it drives the SetEngine
// override, so the `mcio bench fig-exa-faults -engine` path is what is
// being proven.
func TestFaultedExaEnginesMatchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("two full fault grids, byte path included")
	}
	cfg := FigExaFaultsConfig(testScale, 42)
	cfg.Ranks = 600
	cfg.RanksPerNode = 6
	cfg.Targets = 16
	defer SetEngine("")
	byEngine := map[string][]ExaFaultPoint{}
	for _, eng := range Engines {
		if err := SetEngine(eng); err != nil {
			t.Fatal(err)
		}
		pts, err := figExaFaultsRunCfg(cfg)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		byEngine[eng] = pts
	}
	fast, bytes := byEngine[EngineFast], byEngine[EngineBytes]
	if len(fast) != len(bytes) || len(fast) == 0 {
		t.Fatalf("point counts diverge: fast %d, bytes %d", len(fast), len(bytes))
	}
	exercised := 0
	for i := range fast {
		f, b := fast[i], bytes[i]
		if f.RefSeconds != b.RefSeconds {
			t.Fatalf("cell %+v/%s: references diverge: fast %v, bytes %v",
				f.Cell, f.Strategy, f.RefSeconds, b.RefSeconds)
		}
		if !reflect.DeepEqual(f.Res, b.Res) {
			t.Fatalf("cell %+v/%s: engines diverge\nfast  %+v\nbytes %+v",
				f.Cell, f.Strategy, f.Res, b.Res)
		}
		exercised += f.Res.Failovers + f.Res.Stalls
	}
	if exercised == 0 {
		t.Fatal("no grid cell exercised a failover or stall; the cross-check proved nothing")
	}
}

// TestChaosRejectsFastEngine pins satellite semantics: the chaos
// campaigns execute byte-level collectives (hedging, dedup, breaker
// decisions are per-message) and must refuse the analytical engine
// with a clear error instead of silently pricing something else.
func TestChaosRejectsFastEngine(t *testing.T) {
	defer SetEngine("")
	if err := SetEngine(EngineFast); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"chaos", "chaos-gray"} {
		_, err := Ledger(name, testScale, 42)
		if err == nil {
			t.Fatalf("%s: Ledger accepted the fast engine", name)
		}
		if !strings.Contains(err.Error(), "cannot run on engine") {
			t.Fatalf("%s: unhelpful rejection: %v", name, err)
		}
	}
	// The byte engine, named explicitly, must still work.
	if err := SetEngine(EngineBytes); err != nil {
		t.Fatal(err)
	}
	if _, err := Ledger("chaos", testScale, 42); err != nil {
		t.Fatalf("chaos on explicit byte engine: %v", err)
	}
}

// TestValidatePresetConflicts pins the preset × sweep validation: a
// memory point larger than the chosen machine's DRAM must be rejected
// up front (context() would silently clamp it and flatten the sweep),
// and a misspelled preset surfaces machine.Preset's error.
func TestValidatePresetConflicts(t *testing.T) {
	cfg := Fig7Config(1, 1) // scale 1: paper-scale MB reach the machine unshrunk
	cfg.Preset = "exascale2018"
	cfg.MemMB = []int{16}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("16 MB on exascale2018 should fit: %v", err)
	}
	cfg.MemMB = []int{1 << 20} // 1 TB per aggregator vs ~10 GB per node
	err := cfg.Validate()
	if err == nil {
		t.Fatal("TB-scale sweep point on a 10 GB/node machine accepted")
	}
	if !strings.Contains(err.Error(), "exascale-2018") || !strings.Contains(err.Error(), "shrink the sweep") {
		t.Fatalf("conflict error not actionable: %v", err)
	}

	// Headroom multiplies the endowment and must participate.
	cfg.MemMB = []int{16}
	cfg.HeadroomFactor = 1 << 30
	if err := cfg.Validate(); err == nil {
		t.Fatal("absurd headroom on a small machine accepted")
	}

	cfg = Fig7Config(1, 1)
	cfg.Preset = "exascale2019"
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "unknown preset") {
		t.Fatalf("bad preset not rejected: %v", err)
	}
}
