package bench

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/faults"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// FigExaFaultsConfig is the resilience counterpart of FigExaConfig: the
// million-rank IOR write priced under injected faults. The memory axis
// collapses to the paper sweep's middle point — the fault axes replace
// it — and the fast path stays the default engine: pricing recovery at
// this scale is exactly what the faulted fast path exists for (the byte
// path would replay a million messages per round, per cell).
func FigExaFaultsConfig(scale int64, seed uint64) Config {
	cfg := FigExaConfig(scale, seed)
	cfg.Name = "fig-exa-faults"
	cfg.MemMB = []int{16}
	return cfg
}

// exaFaultCell is one cell of the exascale fault grid.
type exaFaultCell struct {
	// Crash is the expected number of host-level events of each kind
	// (crashes, memory collapses) across the whole machine during the
	// fault-free run. A cluster-level budget, not a per-node rate: at
	// ten thousand nodes the bench-scale per-node MTBFs would inject
	// thousands of host faults and no run would survive.
	Crash float64
	// Frac is the expected fraction of nodes that straggle during the
	// run.
	Frac float64
	// Sev is the memory-collapse severity: the fraction of an
	// aggregator's buffer a collapse takes away (Spec.CollapseFraction).
	Sev float64
}

// exaFaultCells is the sweep grid. Collapse severity is inert without
// host events, so the crash=0 row keeps a single severity instead of
// duplicating cells.
func exaFaultCells() []exaFaultCell {
	var cells []exaFaultCell
	for _, crash := range []float64{0, 2, 8} {
		sevs := []float64{0.5, 0.9}
		if crash == 0 {
			sevs = []float64{0.9}
		}
		for _, frac := range []float64{0, 0.25} {
			for _, sev := range sevs {
				cells = append(cells, exaFaultCell{Crash: crash, Frac: frac, Sev: sev})
			}
		}
	}
	return cells
}

// exaFaultSpec builds the fault schedule for one grid cell. Only the
// three swept axes inject events; the bench-scale spec's per-entity
// background faults — message delays/drops per node, OST retry ladders
// per target — are zeroed because their event counts scale with
// machine size: at ten thousand nodes the background alone moves the
// run by hundreds of percent and drowns every swept axis (the
// bench-scale faults sweep covers those kinds). Controlling everything
// but the grid also makes the crash=0/frac=0 row an exact clean
// control, like rate 0 in that sweep.
func exaFaultSpec(seed uint64, horizon float64, nodes int, c exaFaultCell) faults.Spec {
	spec := faults.DefaultSpec(seed, horizon)
	spec.MsgDelayMTBF = 0
	spec.MsgDropMTBF = 0
	spec.OSTTransientMTBF = 0
	spec.OSTPermanentMTBF = 0
	// The horizon is 4× the fault-free run (schedules outlive
	// recovery-extended runs), so rates are calibrated to the first
	// quarter — the window the clean run actually occupies — or the grid
	// would deliver a quarter of what its knobs promise.
	window := horizon / 4
	if c.Crash <= 0 {
		spec.NodeCrashMTBF = 0
		spec.MemCollapseMTBF = 0
	} else {
		// Per-node MTBF such that the machine-wide expected event count
		// within the clean-run window is the cell's budget, per kind.
		spec.NodeCrashMTBF = float64(nodes) * window / c.Crash
		spec.MemCollapseMTBF = float64(nodes) * window / c.Crash
	}
	if c.Frac <= 0 {
		spec.StragglerMTBF = 0
	} else {
		// Episodes last horizon/4 == one clean-run window, so an
		// expected c.Frac episodes per node per window keeps roughly
		// that fraction of the machine straggling at any instant.
		spec.StragglerMTBF = window / c.Frac
	}
	spec.CollapseFraction = c.Sev
	return spec
}

// ExaFaultPoint is one cell of the exascale resilience sweep.
type ExaFaultPoint struct {
	Cell       exaFaultCell
	Strategy   string
	RefSeconds float64 // fault-free run, the overhead denominator
	Res        *collio.FaultResult
	Overlap    bool
}

// figExaFaultsRun prices the million-rank IOR write under the fault
// grid for both strategies. Everything is a deterministic function of
// (scale, seed), cell-parallel like the other sweeps.
func figExaFaultsRun(scale int64, seed uint64) ([]ExaFaultPoint, error) {
	return figExaFaultsRunCfg(FigExaFaultsConfig(scale, seed))
}

// figExaFaultsRunCfg is the configurable core of figExaFaultsRun; the
// engine cross-check test shrinks the topology to a byte-path-feasible
// size through it.
func figExaFaultsRunCfg(cfg Config) ([]ExaFaultPoint, error) {
	wl, _ := FigExaWorkload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		return nil, err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(cfg.MemMB[0])*MB), zs, wl.TotalBytes())
	if err != nil {
		return nil, err
	}
	opt := sim.DefaultOptions()
	opt.Overlap = cfg.Overlap
	opt.NahOpt = cfg.nahOrDefault()
	opt.Trace = true
	engine := cfg.engine()

	// Fault-free references per strategy set the horizon (4× the clean
	// run) and the overhead denominator, as in the bench-scale sweep.
	strategies := []string{"two-phase", "memory-conscious"}
	refs := make([]float64, len(strategies))
	err = ForEach(len(strategies), func(si int) error {
		res, err := faultedRun(ctx, reqs, strategies[si], opt, faults.DefaultSpec(cfg.Seed, 1).WithRate(0), engine)
		if err != nil {
			return err
		}
		refs[si] = res.Seconds
		return nil
	})
	if err != nil {
		return nil, err
	}

	cells := exaFaultCells()
	points := make([]ExaFaultPoint, len(cells)*len(strategies))
	err = ForEach(len(points), func(ci int) error {
		cell := cells[ci/len(strategies)]
		si := ci % len(strategies)
		strategy := strategies[si]
		spec := exaFaultSpec(cfg.Seed, refs[si]*4, nodes, cell)
		res, err := faultedRun(ctx, reqs, strategy, opt, spec, engine)
		if err != nil {
			return fmt.Errorf("bench fig-exa-faults: %s at crash=%g strag=%g sev=%g: %w",
				strategy, cell.Crash, cell.Frac, cell.Sev, err)
		}
		points[ci] = ExaFaultPoint{
			Cell: cell, Strategy: strategy, RefSeconds: refs[si],
			Res: res, Overlap: opt.Overlap,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// FigExaFaults is the exascale resilience experiment (mcio bench
// fig-exa-faults): the Table 1 design point — one million ranks on ten
// thousand nodes — priced under a grid of crash budgets, straggler
// fractions and memory-collapse severities, on the analytical fast
// path. It answers the question the paper could only pose: does the
// memory-conscious strategy's remerge-based failover still beat
// stall-and-retry when the machine is large enough that something is
// always failing?
func FigExaFaults(scale int64, seed uint64) (*Table, error) {
	points, err := figExaFaultsRun(scale, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name: "exascale resilience: IOR write at 1M ranks under injected faults (fast path)",
		Header: []string{"crashes", "straggler", "collapse", "strategy", "MB/s",
			"overhead", "recovery s", "failovers", "stalls", "replayed", "events"},
	}
	for _, pt := range points {
		res := pt.Res
		events := 0
		for _, n := range res.Injected {
			events += n
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", pt.Cell.Crash),
			fmt.Sprintf("%g", pt.Cell.Frac),
			fmt.Sprintf("%g", pt.Cell.Sev),
			pt.Strategy,
			fmt.Sprintf("%.1f", res.Bandwidth/1e6),
			fmt.Sprintf("%+.1f%%", (res.Seconds/pt.RefSeconds-1)*100),
			fmt.Sprintf("%.4f", res.RecoverySeconds),
			fmt.Sprintf("%d", res.Failovers),
			fmt.Sprintf("%d", res.Stalls),
			fmt.Sprintf("%d", res.ReplayedRounds),
			fmt.Sprintf("%d", events),
		})
	}
	return t, nil
}
