package bench

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/layoutaware"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

// StrategyComparison runs the three implemented strategies — classic
// two-phase, layout-aware (LACIO-style, §5's closest related work), and
// memory-conscious — over an IOR-like workload and the memory sweep. It
// separates what layout awareness alone buys (request alignment) from
// what memory consciousness buys (placement and adaptation), which the
// paper argues are orthogonal.
//
// The block size is deliberately not a stripe-unit multiple: IOR's
// power-of-two defaults happen to make the oblivious even split land on
// stripe boundaries anyway, which would hide exactly the effect
// layout-aware I/O exists for.
func StrategyComparison(scale int64, seed uint64) (*Table, error) {
	cfg := Fig7Config(scale, seed)
	cfg.Name = "comparison"
	block := cfg.scaled(4*MB) + 1031 // misaligned on purpose
	wl := workload.IOR{
		Ranks:        cfg.Ranks,
		BlockSize:    block,
		TransferSize: block,
		Segments:     8,
	}
	strategies := []collio.Strategy{twophase.New(), layoutaware.New(), core.New()}
	s, err := runSweep(cfg, wl, "ior", strategies)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "strategy comparison (IOR, 120 ranks, write MB/s)",
		Header: []string{"mem", "two-phase", "layout-aware", "memory-conscious"},
	}
	for _, m := range cfg.MemMB {
		row := []string{fmt.Sprintf("%d MB", m)}
		for _, st := range []string{"two-phase", "layout-aware", "memory-conscious"} {
			p := s.find(m, st, "write")
			if p == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.1f", p.MBps))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
