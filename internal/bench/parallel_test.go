package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/obs"
)

// renderAll produces every user-visible byte of one Figure 7 sweep: the
// summary table, the details table and the JSON export.
func renderAll(t testing.TB, scale int64, seed uint64) string {
	t.Helper()
	s, err := Fig7(scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(Render(s))
	b.WriteString(RenderDetails(s))
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// The tentpole invariant: the parallel sweep engine renders byte-identical
// output to the serial path at any worker count. Cells land in per-index
// slots and are flattened in order, so the schedule cannot leak in.
func TestParallelSweepByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	want := renderAll(t, testScale, 42)
	for _, workers := range []int{2, 4, 16} {
		SetParallelism(workers)
		if got := renderAll(t, testScale, 42); got != want {
			t.Fatalf("workers=%d: rendered sweep differs from the serial run", workers)
		}
	}
}

// The run ledger — what `mcio bench -out` writes and the CI perf gate
// diffs against baselines/ — must be scheduling-invariant too.
func TestParallelLedgerByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	marshal := func() []byte {
		rec, err := Ledger("fig6", testScale, 42)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	SetParallelism(1)
	want := marshal()
	SetParallelism(4)
	if got := marshal(); !bytes.Equal(got, want) {
		t.Fatal("fig6 ledger differs between serial and parallel runs")
	}
}

// The resilience sweep fans (rate × strategy) cells out too; its points
// must come back in the serial order with the serial values.
func TestParallelFaultSweepIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two fault sweeps")
	}
	defer SetParallelism(0)
	SetParallelism(1)
	want, err := faultSweepRun(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	got, err := faultSweepRun(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("point counts differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Rate != w.Rate || g.Strategy != w.Strategy ||
			g.RefSeconds != w.RefSeconds || g.Res.Seconds != w.Res.Seconds ||
			g.Res.RecoverySeconds != w.Res.RecoverySeconds {
			t.Fatalf("point %d differs: serial %+v parallel %+v", i, w, g)
		}
	}
}

// observeArtifacts renders everything an Observe run exports: the
// summary, the Chrome trace and the metrics snapshot.
func observeArtifacts(t testing.TB) string {
	t.Helper()
	res, err := Observe("fig7", testScale, 42, 16, collio.Write)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(res.Summary)
	if err := obs.WriteChromeTrace(&b, res.Obs.Trace); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteMetricsJSON(&b, res.Obs.Metrics); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// Observe fans both strategies out against one shared Observer; the
// exported trace and metrics must still be byte-identical to the serial
// run (tracer PIDs are pre-registered, spans sort deterministically,
// shared counters are commutative adds). Run under -race in CI, this is
// also the race-cleanliness assertion for concurrent obs usage.
func TestParallelObserveByteIdentical(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	want := observeArtifacts(t)
	SetParallelism(4)
	if got := observeArtifacts(t); got != want {
		t.Fatal("observe artifacts differ between serial and parallel runs")
	}
}

// BenchmarkFig6Sweep measures the full Figure 6 sweep end to end at
// several worker budgets. The plan cache is reset each iteration so every
// run pays the full plan+cost path; expect ~min(workers, cores)× speedup
// on a multi-core runner and parity on a single-core host.
func BenchmarkFig6Sweep(b *testing.B) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			SetParallelism(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				collio.ResetPlanCache()
				if _, err := Fig6(testScale, 42); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6SweepWarmCache isolates the plan memoization win: after
// the first sweep, every cell's partition tree comes from the cache and
// only the cost engine runs.
func BenchmarkFig6SweepWarmCache(b *testing.B) {
	defer SetParallelism(0)
	SetParallelism(1)
	collio.ResetPlanCache()
	if _, err := Fig6(testScale, 42); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig6(testScale, 42); err != nil {
			b.Fatal(err)
		}
	}
}
