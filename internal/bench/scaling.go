package bench

import (
	"fmt"

	"mcio/internal/workload"
)

// ScalingSweep extends the paper's 120-vs-1080-core comparison into a
// weak-scaling study: the IOR workload grows with the process count
// (fixed bytes per process), memory per aggregator stays fixed, and both
// strategies are priced at every size. This is the "projected extreme
// scale" trajectory the paper motivates but could only sample at two
// points on its testbed.
func ScalingSweep(scale int64, seed uint64, memMB int) (*Table, error) {
	if memMB <= 0 {
		memMB = 16
	}
	t := &Table{
		Name: fmt.Sprintf("weak scaling: IOR, %d MB per aggregator, 32 MB per process", memMB),
		Header: []string{
			"procs", "nodes", "2ph write", "mc write", "improvement", "2ph agg", "mc agg",
		},
	}
	for _, ranks := range []int{120, 240, 480, 1080, 2160} {
		cfg := Fig7Config(scale, seed)
		cfg.Name = fmt.Sprintf("scaling-%d", ranks)
		cfg.Ranks = ranks
		cfg.MemMB = []int{memMB}
		// Storage grows with the machine, as provisioned systems do.
		cfg.Targets = 16 * ranks / 120
		block := cfg.scaled(4 * MB)
		w := workload.IOR{
			Ranks:        ranks,
			BlockSize:    block,
			TransferSize: block,
			Segments:     8,
		}
		s, err := RunSweep(cfg, w, "ior")
		if err != nil {
			return nil, err
		}
		base := s.find(memMB, "two-phase", "write")
		mc := s.find(memMB, "memory-conscious", "write")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ranks),
			fmt.Sprintf("%d", ranks/cfg.RanksPerNode),
			fmt.Sprintf("%.1f", base.MBps),
			fmt.Sprintf("%.1f", mc.MBps),
			fmt.Sprintf("%+.1f%%", (mc.MBps/base.MBps-1)*100),
			fmt.Sprintf("%d", base.Result.Aggregators),
			fmt.Sprintf("%d", mc.Result.Aggregators),
		})
	}
	return t, nil
}
