package bench

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/forwarding"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

// Motivation reproduces the rationale of the paper's §2: parallel file
// systems handle large contiguous streams well but collapse under many
// small noncontiguous requests, which is exactly what collective I/O
// fixes. It sweeps the IOR transfer granularity from fine to coarse and
// prices independent I/O against both collective strategies.
func Motivation(scale int64, seed uint64) (*Table, error) {
	cfg := Fig7Config(scale, seed)
	cfg.Name = "motivation"
	cfg.MemMB = []int{16}

	t := &Table{
		Name: "motivation: independent vs forwarded vs collective I/O (IOR write, 120 ranks, MB/s)",
		Header: []string{
			"block/rank", "independent", "io-forwarding", "two-phase", "memory-conscious", "collective gain",
		},
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	opt := sim.DefaultOptions()
	// Finer interleaving = more, smaller noncontiguous pieces per rank.
	for _, blockKB := range []int64{64, 256, 1024, 4096} {
		block := cfg.scaled(blockKB << 10)
		segments := int((4 << 20) / (blockKB << 10) * 8)
		if segments < 1 {
			segments = 1
		}
		w := workload.IOR{
			Ranks:        cfg.Ranks,
			BlockSize:    block,
			TransferSize: block,
			Segments:     segments,
		}
		reqs, err := w.Requests()
		if err != nil {
			return nil, err
		}
		ctx, err := cfg.context(cfg.scaled(16*MB), zs, w.TotalBytes())
		if err != nil {
			return nil, err
		}
		indep, err := collio.CostIndependent(ctx, reqs, collio.Write, opt)
		if err != nil {
			return nil, err
		}
		// The forwarding layer gets two dedicated I/O nodes appended to
		// the machine, ZOID-style.
		fctx := *ctx
		fctx.Machine.Nodes += 2
		fctx.Avail = append(append([]int64(nil), ctx.Avail...),
			fctx.Machine.MemPerNode, fctx.Machine.MemPerNode)
		fwd, err := forwarding.Cost(&fctx, reqs, collio.Write, opt,
			forwarding.Config{Forwarders: 2, BufferBytes: cfg.scaled(64 * MB)})
		if err != nil {
			return nil, err
		}
		bw := func(s collio.Strategy) (float64, error) {
			plan, err := s.Plan(ctx, reqs)
			if err != nil {
				return 0, err
			}
			if err := plan.Validate(reqs); err != nil {
				return 0, err
			}
			res, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
			if err != nil {
				return 0, err
			}
			return res.Bandwidth, nil
		}
		twoPh, err := bw(twophase.New())
		if err != nil {
			return nil, err
		}
		mc, err := bw(core.New())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d KB", blockKB),
			fmt.Sprintf("%.1f", indep.Bandwidth/1e6),
			fmt.Sprintf("%.1f", fwd.Bandwidth/1e6),
			fmt.Sprintf("%.1f", twoPh/1e6),
			fmt.Sprintf("%.1f", mc/1e6),
			fmt.Sprintf("%.1fx", mc/indep.Bandwidth),
		})
	}
	return t, nil
}
