package bench

import (
	"math"
	"testing"

	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
)

func TestLedgerFig7(t *testing.T) {
	rec, err := Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "fig7" || rec.Params["seed"] != "1" {
		t.Fatalf("ledger header wrong: %+v", rec)
	}
	// 2 strategies x 2 ops x 7 memory points.
	if len(rec.Entries) != 28 {
		t.Fatalf("got %d entries, want 28", len(rec.Entries))
	}
	for _, e := range rec.Entries {
		if e.BandwidthMBps <= 0 || e.WallSeconds <= 0 || e.Rounds <= 0 {
			t.Fatalf("entry %s has empty headline numbers: %+v", e.Name, e)
		}
		if len(e.Blame) == 0 {
			t.Fatalf("entry %s has no blame", e.Name)
		}
		var total float64
		for _, v := range e.Blame {
			total += v
		}
		if math.Abs(total-e.WallSeconds) > 1e-9*e.WallSeconds {
			t.Errorf("entry %s: blame total %v != wall %v", e.Name, total, e.WallSeconds)
		}
	}
}

func TestLedgerTrajectoryAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory+faults ledger is slow")
	}
	rec, err := Ledger("trajectory", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 10 { // 5 design points x 2 strategies
		t.Fatalf("trajectory: got %d entries, want 10", len(rec.Entries))
	}
	// Seed 5 keeps a live relocation host at every fault rate (seed 1
	// wipes out every candidate at rate 4, a legitimate planner error).
	frec, err := Ledger("faults", testScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(frec.Entries) != 10 { // 5 rates x 2 strategies
		t.Fatalf("faults: got %d entries, want 10", len(frec.Entries))
	}
	var sawRecovery bool
	for _, e := range frec.Entries {
		var total float64
		for _, v := range e.Blame {
			total += v
		}
		if math.Abs(total-e.WallSeconds) > 1e-9*e.WallSeconds {
			t.Errorf("faults entry %s: blame total %v != wall %v", e.Name, total, e.WallSeconds)
		}
		if e.Blame[analyze.PhaseRecovery] > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("no faulted entry attributed recovery time")
	}
}

// TestLedgerChaos: the chaos soak emits a loadable RunRecord whose
// metrics-only entries (detection counts, repair bytes, degradation
// rungs) flow through the trend analyzer unchanged.
func TestLedgerChaos(t *testing.T) {
	rec, err := Ledger("chaos", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "chaos" || rec.Params["ops"] != "50" || rec.Params["repair"] != "true" {
		t.Fatalf("chaos ledger header wrong: %+v", rec)
	}
	want := map[string][]string{
		"chaos/detection":   {"injected_flips", "injected_torn", "detected", "undetected"},
		"chaos/repair":      {"repaired", "unrepaired", "rewritten_bytes", "sums_stamped", "sums_verified"},
		"chaos/degradation": {"collective_ops", "shrunk_ops", "independent_ops", "violations"},
	}
	if len(rec.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rec.Entries), len(want))
	}
	for _, e := range rec.Entries {
		keys, ok := want[e.Name]
		if !ok {
			t.Fatalf("unexpected entry %q", e.Name)
		}
		if e.BandwidthMBps != 0 || e.WallSeconds != 0 {
			t.Errorf("chaos entry %s has phantom headline numbers", e.Name)
		}
		for _, k := range keys {
			if _, ok := e.Metrics[k]; !ok {
				t.Errorf("entry %s missing metric %q", e.Name, k)
			}
		}
	}
	// The seed-1 campaign detects every injection and repairs cleanly.
	for _, e := range rec.Entries {
		if e.Name == "chaos/detection" {
			if e.Metrics["detected"] <= 0 || e.Metrics["undetected"] != 0 {
				t.Errorf("detection metrics off: %+v", e.Metrics)
			}
		}
	}
	// Deterministic: same seed, same record.
	again, err := Ledger("chaos", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := obs.DiffRunRecords(rec, again, obs.DiffOptions{})
	if n := len(res.Regressions()); n != 0 {
		t.Fatalf("chaos ledger not deterministic: %d regressions", n)
	}
}

func TestStampedLedgerProvenance(t *testing.T) {
	rec, err := StampedLedger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.UnixNanos == 0 {
		t.Error("stamped ledger missing timestamp")
	}
	if rec.Host == nil || rec.Host.GoVersion == "" || rec.Host.NumCPU <= 0 {
		t.Errorf("stamped ledger missing host info: %+v", rec.Host)
	}
	if rec.Telemetry == nil || rec.Telemetry.HostWallSeconds <= 0 ||
		rec.Telemetry.TotalAllocBytes == 0 || rec.Telemetry.PeakHeapBytes == 0 {
		t.Errorf("stamped ledger missing telemetry: %+v", rec.Telemetry)
	}
}

func TestLedgerUnknownExperiment(t *testing.T) {
	if _, err := Ledger("fig99", testScale, 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestLedgerDeterministicAndDiffClean(t *testing.T) {
	a, err := Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := obs.DiffRunRecords(a, b, obs.DiffOptions{})
	if n := len(res.Regressions()); n != 0 {
		t.Fatalf("identical runs diff dirty: %d regressions\n%s", n, res.Render())
	}
}

func TestTrajectoryBlameTable(t *testing.T) {
	tb, err := TrajectoryBlame(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(tb.Rows))
	}
	if len(tb.Header) != 3+len(analyze.Phases()) {
		t.Fatalf("header %v missing phase columns", tb.Header)
	}
}
