package bench

import (
	"math"
	"testing"

	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
)

func TestLedgerFig7(t *testing.T) {
	rec, err := Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "fig7" || rec.Params["seed"] != "1" {
		t.Fatalf("ledger header wrong: %+v", rec)
	}
	// 2 strategies x 2 ops x 7 memory points.
	if len(rec.Entries) != 28 {
		t.Fatalf("got %d entries, want 28", len(rec.Entries))
	}
	for _, e := range rec.Entries {
		if e.BandwidthMBps <= 0 || e.WallSeconds <= 0 || e.Rounds <= 0 {
			t.Fatalf("entry %s has empty headline numbers: %+v", e.Name, e)
		}
		if len(e.Blame) == 0 {
			t.Fatalf("entry %s has no blame", e.Name)
		}
		var total float64
		for _, v := range e.Blame {
			total += v
		}
		if math.Abs(total-e.WallSeconds) > 1e-9*e.WallSeconds {
			t.Errorf("entry %s: blame total %v != wall %v", e.Name, total, e.WallSeconds)
		}
	}
}

func TestLedgerTrajectoryAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory+faults ledger is slow")
	}
	rec, err := Ledger("trajectory", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 10 { // 5 design points x 2 strategies
		t.Fatalf("trajectory: got %d entries, want 10", len(rec.Entries))
	}
	// Seed 5 keeps a live relocation host at every fault rate (seed 1
	// wipes out every candidate at rate 4, a legitimate planner error).
	frec, err := Ledger("faults", testScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(frec.Entries) != 10 { // 5 rates x 2 strategies
		t.Fatalf("faults: got %d entries, want 10", len(frec.Entries))
	}
	var sawRecovery bool
	for _, e := range frec.Entries {
		var total float64
		for _, v := range e.Blame {
			total += v
		}
		if math.Abs(total-e.WallSeconds) > 1e-9*e.WallSeconds {
			t.Errorf("faults entry %s: blame total %v != wall %v", e.Name, total, e.WallSeconds)
		}
		if e.Blame[analyze.PhaseRecovery] > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("no faulted entry attributed recovery time")
	}
}

func TestLedgerUnknownExperiment(t *testing.T) {
	if _, err := Ledger("fig99", testScale, 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestLedgerDeterministicAndDiffClean(t *testing.T) {
	a, err := Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	res := obs.DiffRunRecords(a, b, obs.DiffOptions{})
	if n := len(res.Regressions()); n != 0 {
		t.Fatalf("identical runs diff dirty: %d regressions\n%s", n, res.Render())
	}
}

func TestTrajectoryBlameTable(t *testing.T) {
	tb, err := TrajectoryBlame(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("got %d rows, want 10", len(tb.Rows))
	}
	if len(tb.Header) != 3+len(analyze.Phases()) {
		t.Fatalf("header %v missing phase columns", tb.Header)
	}
}
