package bench

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcio/internal/collio"
)

// testScale keeps package tests fast; shapes are scale-invariant.
const testScale = 256

func TestConfigValidate(t *testing.T) {
	good := Fig7Config(testScale, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.RanksPerNode = 0 },
		func(c *Config) { c.Targets = 0 },
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.SigmaMB = -1 },
		func(c *Config) { c.MemMB = nil },
		func(c *Config) { c.MemMB = []int{0} },
	}
	for i, mut := range mutations {
		cfg := Fig7Config(testScale, 1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestScaledClamps(t *testing.T) {
	c := Config{Scale: 1000}
	if c.scaled(500) != 1 {
		t.Fatal("scaled must clamp at 1")
	}
	if c.scaled(2000) != 2 {
		t.Fatal("scaled arithmetic")
	}
}

func TestFig7ShapeMatchesPaper(t *testing.T) {
	s, err := Fig7(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(paperSweepMB())*4 {
		t.Fatalf("points = %d", len(s.Points))
	}
	// Headline: memory-conscious beats two-phase on average for both ops.
	if imp := s.Improvement("write"); imp <= 0.2 {
		t.Errorf("write improvement = %+.1f%%, expected clearly positive", imp*100)
	}
	if imp := s.Improvement("read"); imp <= 0.2 {
		t.Errorf("read improvement = %+.1f%%, expected clearly positive", imp*100)
	}
	// Both strategies degrade as aggregator memory shrinks (paper's
	// overall trend): the 2 MB point is well below the 128 MB point.
	for _, strategy := range []string{"two-phase", "memory-conscious"} {
		lo := s.find(2, strategy, "write").MBps
		hi := s.find(128, strategy, "write").MBps
		if lo >= hi {
			t.Errorf("%s write does not degrade under memory pressure: 2MB=%.0f 128MB=%.0f",
				strategy, lo, hi)
		}
	}
	// Reads stream faster than writes for the same plan.
	for _, p := range s.Points {
		if p.Op != "write" {
			continue
		}
		r := s.find(p.MemMB, p.Strategy, "read")
		if r.MBps < p.MBps {
			t.Errorf("%s at %d MB: read %.0f slower than write %.0f",
				p.Strategy, p.MemMB, r.MBps, p.MBps)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	s, err := Fig6(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if imp := s.Improvement("write"); imp <= 0 {
		t.Errorf("fig6 write improvement = %+.1f%%, want positive", imp*100)
	}
	if imp := s.Improvement("read"); imp <= 0 {
		t.Errorf("fig6 read improvement = %+.1f%%, want positive", imp*100)
	}
}

func TestFig8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("1080-rank sweep")
	}
	s, err := Fig8(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if imp := s.Improvement("write"); imp <= 0 {
		t.Errorf("fig8 write improvement = %+.1f%%, want positive", imp*100)
	}
	// The paper's Figure 8 baseline declines steeply from 128 MB to 2 MB.
	base2 := s.find(2, "two-phase", "write").MBps
	base128 := s.find(128, "two-phase", "write").MBps
	if base128/base2 < 1.5 {
		t.Errorf("fig8 baseline decline = %.2fx, expected > 1.5x", base128/base2)
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := Fig7(testScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(testScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].MBps != b.Points[i].MBps {
			t.Fatalf("point %d differs across identical runs", i)
		}
	}
}

func TestSeedChangesDraws(t *testing.T) {
	a, err := Fig7(testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig7(testScale, 2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Points {
		if a.Points[i].MBps != b.Points[i].MBps {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sweeps")
	}
}

func TestRender(t *testing.T) {
	s, err := Fig7(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(s)
	for _, want := range []string{"fig7", "2 MB", "128 MB", "average improvement"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	det := RenderDetails(s)
	for _, want := range []string{"two-phase", "memory-conscious", "bufCV"} {
		if !strings.Contains(det, want) {
			t.Errorf("RenderDetails missing %q", want)
		}
	}
}

func TestImprovementEmpty(t *testing.T) {
	s := &Series{Config: Config{MemMB: []int{1}}}
	if s.Improvement("write") != 0 {
		t.Fatal("empty series improvement should be 0")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps")
	}
	type ab struct {
		name string
		run  func(int64, uint64) (*Table, error)
	}
	for _, a := range []ab{
		{"grouping", AblationGrouping},
		{"nah", AblationNah},
		{"sigma", AblationSigma},
		{"overlap", AblationOverlap},
		{"aggs-per-node", AblationAggsPerNode},
	} {
		tbl, err := a.run(testScale, 42)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", a.name)
		}
		if out := tbl.Render(); !strings.Contains(out, "ablation") {
			t.Errorf("%s: render missing title", a.name)
		}
	}
}

func TestAblationSigmaTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep")
	}
	// The memory-conscious advantage must grow with availability variance:
	// at sigma 0 the strategies face identical uniform memory; at sigma
	// 100 the baseline's oblivious placement pays heavily.
	tbl, err := AblationSigma(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscanfPercent(s, &v); err != nil {
			t.Fatalf("bad improvement cell %q", s)
		}
		return v
	}
	first := parse(tbl.Rows[0][3])
	last := parse(tbl.Rows[len(tbl.Rows)-1][3])
	if last <= first {
		t.Errorf("improvement should grow with sigma: %v -> %v", first, last)
	}
}

// fmtSscanfPercent parses "+12.3%" into a float64.
func fmtSscanfPercent(s string, v *float64) (int, error) {
	return fmt.Sscanf(strings.TrimSuffix(s, "%"), "%f", v)
}

func TestMotivation(t *testing.T) {
	tbl, err := Motivation(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// At the finest granularity, collective I/O must beat independent.
	var indep, mc float64
	fmt.Sscanf(tbl.Rows[0][1], "%f", &indep)
	fmt.Sscanf(tbl.Rows[0][3], "%f", &mc)
	if mc <= indep {
		t.Fatalf("collective (%v) not faster than independent (%v) at fine granularity", mc, indep)
	}
}

func TestScalingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size sweep")
	}
	tbl, err := ScalingSweep(testScale, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Weak scaling: aggregate bandwidth grows with process count for both
	// strategies, and memory-conscious wins at every size.
	var prevBase float64
	for i, row := range tbl.Rows {
		var base, mc float64
		fmt.Sscanf(row[2], "%f", &base)
		fmt.Sscanf(row[3], "%f", &mc)
		if mc <= base {
			t.Errorf("row %d: mc %v not faster than base %v", i, mc, base)
		}
		if base < prevBase {
			t.Errorf("row %d: baseline did not scale (%v < %v)", i, base, prevBase)
		}
		prevBase = base
	}
	// Defaulted memory argument.
	if _, err := ScalingSweep(testScale, 42, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTuneWorkload(t *testing.T) {
	cfg := Fig7Config(testScale, 42)
	cfg.MemMB = []int{16}
	wl, _ := Fig7Workload(cfg)
	res, err := TuneWorkload(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Best.Bandwidth <= 0 {
		t.Fatalf("degenerate tune: %+v", res.Best)
	}
	bad := cfg
	bad.Scale = 0
	if _, err := TuneWorkload(bad, wl); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestStrategyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("three-strategy sweep")
	}
	tbl, err := StrategyComparison(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(paperSweepMB()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Memory-conscious must win the comparison at the scarce end.
	var base, la, mc float64
	fmt.Sscanf(tbl.Rows[0][1], "%f", &base)
	fmt.Sscanf(tbl.Rows[0][2], "%f", &la)
	fmt.Sscanf(tbl.Rows[0][3], "%f", &mc)
	if mc <= base || mc <= la {
		t.Fatalf("memory-conscious (%v) should beat two-phase (%v) and layout-aware (%v)", mc, base, la)
	}
}

func TestTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("five design points")
	}
	tbl, err := Trajectory(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Memory-conscious wins at every design point along the trajectory.
	for i, row := range tbl.Rows {
		var base, mc float64
		fmt.Sscanf(row[2], "%f", &base)
		fmt.Sscanf(row[3], "%f", &mc)
		if mc <= base {
			t.Errorf("row %d: mc %v <= base %v", i, mc, base)
		}
	}
}

func TestSeriesJSONExport(t *testing.T) {
	s, err := Fig7(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name": "fig7-ior-120"`, `"mem_mb": 2`, `"write_improvement"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	tbl := &Table{Name: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}}
	buf.Reset()
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"rows"`) {
		t.Fatal("table JSON missing rows")
	}
}

func TestRoundTraceRenders(t *testing.T) {
	out, err := RoundTrace(testScale, 42, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"round trace", "two-phase", "memory-conscious", "round "} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestRandomVsInterleaved(t *testing.T) {
	if testing.Short() {
		t.Skip("two sweeps")
	}
	tbl, err := RandomVsInterleaved(testScale, 42, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for i, row := range tbl.Rows {
		var base, mc float64
		fmt.Sscanf(row[1], "%f", &base)
		fmt.Sscanf(row[2], "%f", &mc)
		if mc <= base {
			t.Errorf("row %d (%s): mc %v <= base %v", i, row[0], mc, base)
		}
	}
	if _, err := RandomVsInterleaved(testScale, 42, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPlansAt(t *testing.T) {
	cfg := Fig7Config(testScale, 42)
	plans, topo, err := PlansAt(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	if topo.Size() != cfg.Ranks {
		t.Fatalf("topology size = %d", topo.Size())
	}
	for _, p := range plans {
		if len(p.Domains) == 0 {
			t.Fatalf("plan %s has no domains", p.Strategy)
		}
		if out := p.Describe(topo); !strings.Contains(out, "domain 0") {
			t.Fatalf("describe output broken for %s", p.Strategy)
		}
	}
	bad := cfg
	bad.Ranks = 0
	if _, _, err := PlansAt(bad, 8); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestFigExaEnginesMatchSmall shrinks the fig-exa configuration to a
// byte-path-feasible size and cross-checks that both engines price every
// cell of the sweep identically — the fast path's exactness contract on
// the exascale experiment's own workload shape.
func TestFigExaEnginesMatchSmall(t *testing.T) {
	cfg := FigExaConfig(testScale, 42)
	cfg.Ranks = 600
	cfg.RanksPerNode = 6
	cfg.Targets = 16
	wl, name := FigExaWorkload(cfg)
	fast, err := RunSweep(cfg, wl, name)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineBytes
	bytes, err := RunSweep(cfg, wl, name)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Points) != len(bytes.Points) || len(fast.Points) == 0 {
		t.Fatalf("point counts diverge: fast %d, bytes %d", len(fast.Points), len(bytes.Points))
	}
	for i := range fast.Points {
		f, b := fast.Points[i], bytes.Points[i]
		if !reflect.DeepEqual(f.Result, b.Result) {
			t.Fatalf("cell %s/%s/mem=%d: engines diverge", f.Strategy, f.Op, f.MemMB)
		}
	}
}

// TestEnginesMatchAllFigures cross-checks the two pricing engines on
// every cell of every figure sweep: fig6, fig7 and fig8 priced under
// the byte path and the fast path must agree bit for bit — seconds,
// totals, blame traces, everything in the CostResult. This is the CI
// cross-check gate; it drives the engines through the SetEngine
// override, so the `mcio bench -engine` path is what is being proven.
func TestEnginesMatchAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("three full figure sweeps, twice each")
	}
	if err := SetEngine("warp"); err == nil {
		t.Fatal("SetEngine accepted an unknown engine")
	}
	defer SetEngine("")
	figures := []struct {
		name string
		run  func(int64, uint64) (*Series, error)
	}{{"fig6", Fig6}, {"fig7", Fig7}, {"fig8", Fig8}}
	for _, fig := range figures {
		byEngine := map[string]*Series{}
		for _, eng := range Engines {
			if err := SetEngine(eng); err != nil {
				t.Fatal(err)
			}
			s, err := fig.run(testScale, 42)
			if err != nil {
				t.Fatalf("%s/%s: %v", fig.name, eng, err)
			}
			byEngine[eng] = s
		}
		fast, bytes := byEngine[EngineFast], byEngine[EngineBytes]
		if len(fast.Points) != len(bytes.Points) || len(fast.Points) == 0 {
			t.Fatalf("%s: point counts diverge: fast %d, bytes %d",
				fig.name, len(fast.Points), len(bytes.Points))
		}
		for i := range fast.Points {
			f, b := fast.Points[i], bytes.Points[i]
			if !reflect.DeepEqual(f.Result, b.Result) {
				t.Errorf("%s cell %s/%s/mem=%d: engines diverge",
					fig.name, f.Strategy, f.Op, f.MemMB)
			}
		}
	}
}

// BenchmarkFastPathExa is the headline fast-path measurement: the full
// fig-exa sweep — one million ranks on ten thousand exascale nodes, four
// memory points, two strategies, write and read — priced analytically.
// The acceptance bar is well under a minute per sweep; the byte path
// cannot run this at all without materializing ~1M messages per round.
func BenchmarkFastPathExa(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		collio.ResetPlanCache()
		if _, err := FigExa(DefaultScale, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastVsByteFig6 compares the two pricing engines head to head
// on the identical Figure 6 sweep: same plans, same results (the
// cross-check tests assert bitwise equality), different cost to compute
// them.
func BenchmarkFastVsByteFig6(b *testing.B) {
	for _, engine := range Engines {
		b.Run(engine, func(b *testing.B) {
			cfg := Fig6Config(testScale, 42)
			cfg.Engine = engine
			wl, name, err := Fig6Workload(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				collio.ResetPlanCache()
				if _, err := RunSweep(cfg, wl, name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
