package bench

import (
	"fmt"
	"strconv"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
)

// LedgerExperiments lists every experiment Ledger can run, in display
// order — the single source of truth for the CLI's usage text.
var LedgerExperiments = []string{"fig6", "fig7", "fig8", "trajectory", "faults"}

// Ledger runs one experiment and returns its run ledger — the stable
// obs.RunRecord that `mcio bench -out` writes and `mcio diff` compares.
// Supported experiments: fig6, fig7, fig8 (the bandwidth sweeps),
// trajectory (Table 1 interpolation) and faults (the resilience sweep).
// Every entry carries bandwidth, simulated wall time, round count and
// the critical-path blame breakdown, so a ledger diff can say not just
// "fig6 got slower" but "its paging share doubled".
func Ledger(name string, scale int64, seed uint64) (*obs.RunRecord, error) {
	rec := &obs.RunRecord{
		Name: name,
		Params: map[string]string{
			"scale": strconv.FormatInt(scale, 10),
			"seed":  strconv.FormatUint(seed, 10),
		},
	}
	switch name {
	case "fig6", "fig7", "fig8":
		var (
			series *Series
			err    error
		)
		switch name {
		case "fig6":
			series, err = Fig6(scale, seed)
		case "fig7":
			series, err = Fig7(scale, seed)
		default:
			series, err = Fig8(scale, seed)
		}
		if err != nil {
			return nil, err
		}
		for _, p := range series.Points {
			rec.Entries = append(rec.Entries, sweepEntry(p, series.Config.Overlap))
		}
	case "trajectory":
		points, err := trajectoryRun(scale, seed)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			for _, strategy := range []string{"two-phase", "memory-conscious"} {
				res := pt.Results[strategy]
				e := costEntry(fmt.Sprintf("t=%.2f/%s", pt.T, strategy), res, pt.Overlap)
				e.Metrics["mem_per_core_bytes"] = float64(pt.MemPerCore)
				rec.Entries = append(rec.Entries, e)
			}
		}
	case "faults":
		points, err := faultSweepRun(scale, seed)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			e := costEntry(fmt.Sprintf("rate=%g/%s", pt.Rate, pt.Strategy), &pt.Res.CostResult, pt.Overlap)
			// Recovery the trace cannot see (detection stalls, reboot
			// waits) tops up the blame; totals keep summing to wall time.
			topUpRecovery(e.Blame, pt.Res.RecoverySeconds)
			e.Metrics["failovers"] = float64(pt.Res.Failovers)
			e.Metrics["stalls"] = float64(pt.Res.Stalls)
			e.Metrics["replayed_rounds"] = float64(pt.Res.ReplayedRounds)
			e.Metrics["recovery_seconds"] = pt.Res.RecoverySeconds
			rec.Entries = append(rec.Entries, e)
		}
	default:
		return nil, fmt.Errorf("bench: Ledger knows %s; not %q", strings.Join(LedgerExperiments, ", "), name)
	}
	return rec, nil
}

// sweepEntry converts one figure sweep point into a ledger entry.
func sweepEntry(p Point, overlap bool) obs.RunEntry {
	e := costEntry(fmt.Sprintf("%s/%s/mem=%d", p.Strategy, p.Op, p.MemMB), p.Result, overlap)
	e.Metrics["paged_aggregators"] = float64(p.Result.PagedAggregators)
	e.Metrics["domains"] = float64(p.Result.Domains)
	return e
}

// costEntry builds the common ledger entry for one priced run: headline
// numbers plus the per-phase critical-path blame from the round trace.
func costEntry(name string, res *collio.CostResult, overlap bool) obs.RunEntry {
	e := obs.RunEntry{
		Name:          name,
		BandwidthMBps: res.Bandwidth / 1e6,
		WallSeconds:   res.Seconds,
		Rounds:        res.Totals.Rounds,
		Metrics:       map[string]float64{},
	}
	if len(res.Trace) > 0 {
		b := analyze.BlameFromTrace(res.Trace, overlap)
		// Whatever wall time the rounds do not cover (e.g. flat recovery
		// latency) lands in "other" so the blame sums to WallSeconds.
		if rest := res.Seconds - b.Total(); rest > 1e-12 {
			b[analyze.PhaseOther] += rest
		}
		e.Blame = map[string]float64(b)
	}
	return e
}

// topUpRecovery moves stall time the round trace cannot attribute from
// "other" into "recovery": recoverySeconds is the run's authoritative
// recovery total. Only time already parked in "other" moves, so the
// blame total is preserved.
func topUpRecovery(blame map[string]float64, recoverySeconds float64) {
	if blame == nil {
		return
	}
	extra := recoverySeconds - blame[analyze.PhaseRecovery]
	if extra <= 0 {
		return
	}
	if other := blame[analyze.PhaseOther]; extra > other {
		extra = other
	}
	blame[analyze.PhaseRecovery] += extra
	blame[analyze.PhaseOther] -= extra
}
