package bench

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
)

// LedgerExperiments lists every experiment Ledger can run, in display
// order — the single source of truth for the CLI's usage text.
var LedgerExperiments = []string{"fig6", "fig7", "fig8", "fig-exa", "fig-exa-faults", "trajectory", "faults", "chaos", "chaos-gray"}

// chaosLedgerOps is the campaign length of the chaos ledger run: long
// enough that detection/repair/degradation counts are meaningful, short
// enough for the CI gate.
const chaosLedgerOps = 50

// grayLedgerOps is the campaign length of the gray ledger run: each op
// prices three cost runs and executes two real hedged collectives, so
// it is shorter than the corruption soak for the same CI budget.
const grayLedgerOps = 20

// Ledger runs one experiment and returns its run ledger — the stable
// obs.RunRecord that `mcio bench -out` writes and `mcio diff` compares.
// Supported experiments: fig6, fig7, fig8 (the bandwidth sweeps),
// trajectory (Table 1 interpolation) and faults (the resilience sweep).
// Every entry carries bandwidth, simulated wall time, round count and
// the critical-path blame breakdown, so a ledger diff can say not just
// "fig6 got slower" but "its paging share doubled".
func Ledger(name string, scale int64, seed uint64) (*obs.RunRecord, error) {
	rec := &obs.RunRecord{
		Name: name,
		Params: map[string]string{
			"scale": strconv.FormatInt(scale, 10),
			"seed":  strconv.FormatUint(seed, 10),
		},
	}
	switch name {
	case "fig6", "fig7", "fig8", "fig-exa":
		var (
			series *Series
			err    error
		)
		switch name {
		case "fig6":
			series, err = Fig6(scale, seed)
		case "fig7":
			series, err = Fig7(scale, seed)
		case "fig8":
			series, err = Fig8(scale, seed)
		default:
			series, err = FigExa(scale, seed)
		}
		if err != nil {
			return nil, err
		}
		// Trend matches series across archived records by entry name, so
		// experiments sharing one history directory need distinct names
		// (the chaos/gray convention). fig-exa gets a prefix; fig6 keeps
		// its legacy bare names, pinned by the committed baselines.
		prefix := ""
		if name == "fig-exa" {
			prefix = "fig-exa/"
		}
		for _, p := range series.Points {
			e := sweepEntry(p, series.Config.Overlap)
			e.Name = prefix + e.Name
			rec.Entries = append(rec.Entries, e)
		}
	case "trajectory":
		points, err := trajectoryRun(scale, seed)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			for _, strategy := range []string{"two-phase", "memory-conscious"} {
				res := pt.Results[strategy]
				e := costEntry(fmt.Sprintf("t=%.2f/%s", pt.T, strategy), res, pt.Overlap)
				e.Metrics["mem_per_core_bytes"] = float64(pt.MemPerCore)
				rec.Entries = append(rec.Entries, e)
			}
		}
	case "faults":
		points, err := faultSweepRun(scale, seed)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			e := costEntry(fmt.Sprintf("rate=%g/%s", pt.Rate, pt.Strategy), &pt.Res.CostResult, pt.Overlap)
			// Recovery the trace cannot see (detection stalls, reboot
			// waits) tops up the blame; totals keep summing to wall time.
			topUpRecovery(e.Blame, pt.Res.RecoverySeconds)
			e.Metrics["failovers"] = float64(pt.Res.Failovers)
			e.Metrics["stalls"] = float64(pt.Res.Stalls)
			e.Metrics["replayed_rounds"] = float64(pt.Res.ReplayedRounds)
			e.Metrics["recovery_seconds"] = pt.Res.RecoverySeconds
			rec.Entries = append(rec.Entries, e)
		}
	case "fig-exa-faults":
		points, err := figExaFaultsRun(scale, seed)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			e := costEntry(fmt.Sprintf("fig-exa-faults/crash=%g,strag=%g,sev=%g/%s",
				pt.Cell.Crash, pt.Cell.Frac, pt.Cell.Sev, pt.Strategy), &pt.Res.CostResult, pt.Overlap)
			topUpRecovery(e.Blame, pt.Res.RecoverySeconds)
			e.Metrics["failovers"] = float64(pt.Res.Failovers)
			e.Metrics["stalls"] = float64(pt.Res.Stalls)
			e.Metrics["replayed_rounds"] = float64(pt.Res.ReplayedRounds)
			e.Metrics["recovery_seconds"] = pt.Res.RecoverySeconds
			rec.Entries = append(rec.Entries, e)
		}
	case "chaos":
		// The chaos campaigns execute real byte-level collectives —
		// checksums, hedges, repairs — so there is nothing the analytical
		// engine could price; reject the override instead of silently
		// ignoring it.
		if e := currentEngineOverride(); e != "" && e != EngineBytes {
			return nil, fmt.Errorf("bench %s: campaign executes byte-level collectives and cannot run on engine %q; use -engine %s or drop the flag",
				name, e, EngineBytes)
		}
		rep, err := Chaos(ChaosConfig{Seed: seed, Ops: chaosLedgerOps, Rate: 2, Repair: true})
		if err != nil {
			return nil, err
		}
		rec.Params["ops"] = strconv.Itoa(chaosLedgerOps)
		rec.Params["rate"] = "2"
		rec.Params["repair"] = "true"
		rec.Entries = append(rec.Entries, chaosEntries(rep)...)
	case "chaos-gray":
		if e := currentEngineOverride(); e != "" && e != EngineBytes {
			return nil, fmt.Errorf("bench %s: campaign executes byte-level collectives and cannot run on engine %q; use -engine %s or drop the flag",
				name, e, EngineBytes)
		}
		rep, err := Gray(GrayConfig{Seed: seed, Ops: grayLedgerOps, Rate: 2, Repair: true})
		if err != nil {
			return nil, err
		}
		rec.Params["ops"] = strconv.Itoa(grayLedgerOps)
		rec.Params["rate"] = "2"
		rec.Params["repair"] = "true"
		rec.Entries = append(rec.Entries, grayEntries(rep)...)
	default:
		return nil, cliutil.UnknownChoice("experiment", name, LedgerExperiments)
	}
	return rec, nil
}

// StampedLedger is Ledger plus provenance: it times the run on the
// host clock, captures allocator telemetry around it via
// runtime.ReadMemStats, and stamps the record with the host metadata
// the perf-history archive keys on. Ledger itself stays a pure function
// of (name, scale, seed) — the parallel byte-identity tests rely on
// that — so everything nondeterministic lives here.
func StampedLedger(name string, scale int64, seed uint64) (*obs.RunRecord, error) {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	rec, err := Ledger(name, scale, seed)
	if err != nil {
		return nil, err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	rec.UnixNanos = start.UnixNano()
	rec.Host = obs.CaptureHost()
	rec.Telemetry = &obs.Telemetry{
		HostWallSeconds: time.Since(start).Seconds(),
		TotalAllocBytes: after.TotalAlloc - before.TotalAlloc,
		PeakHeapBytes:   after.HeapSys,
	}
	// fig-exa exists to prove the fast path's speed, so its ledger also
	// carries the host-side cost of producing it as a metrics-only entry:
	// the trend gate drift-checks metrics series over history, turning a
	// fast-path slowdown or allocation regression into a flagged series.
	// (Metrics do not feed the step-regression diff, so cross-machine
	// wall-clock noise cannot fail the baseline gate.)
	if name == "fig-exa" || name == "fig-exa-faults" {
		rec.Entries = append(rec.Entries, obs.RunEntry{
			Name: name + "/harness",
			Metrics: map[string]float64{
				"host_wall_seconds": rec.Telemetry.HostWallSeconds,
				"total_alloc_bytes": float64(rec.Telemetry.TotalAllocBytes),
			},
		})
	}
	return rec, nil
}

// chaosEntries converts a chaos-campaign report into metrics-only
// ledger entries — detection counts, repair byte totals and the
// degradation-ladder rung counts — so resilience behaviour sits under
// the same trend-over-history gate as the bandwidth sweeps. The trend
// analyzer treats metrics-only entries as "steady": any sustained move
// in either direction is a behavioural shift worth flagging.
func chaosEntries(rep *ChaosReport) []obs.RunEntry {
	return []obs.RunEntry{
		{Name: "chaos/detection", Metrics: map[string]float64{
			"injected_flips": float64(rep.InjectedFlips),
			"injected_torn":  float64(rep.InjectedTorn),
			"detected":       float64(rep.Detected),
			"undetected":     float64(rep.Undetected()),
		}},
		{Name: "chaos/repair", Metrics: map[string]float64{
			"repaired":        float64(rep.Repaired),
			"unrepaired":      float64(rep.Unrepaired),
			"rewritten_bytes": float64(rep.RewrittenBytes),
			"sums_stamped":    float64(rep.SumsStamped),
			"sums_verified":   float64(rep.SumsVerified),
		}},
		{Name: "chaos/degradation", Metrics: map[string]float64{
			"collective_ops":  float64(rep.CollectiveOps),
			"shrunk_ops":      float64(rep.ShrunkOps),
			"independent_ops": float64(rep.IndependentOps),
			"violations":      float64(len(rep.Violations)),
		}},
	}
}

// grayEntries converts a gray-campaign report into metrics-only ledger
// entries — adaptive-policy activity, hedging totals, detection counts
// and the pinned duel's wall times — so gray-failure behaviour is
// drift-checked over history like the bandwidth sweeps.
func grayEntries(rep *GrayReport) []obs.RunEntry {
	return []obs.RunEntry{
		{Name: "gray/adaptive", Metrics: map[string]float64{
			"suspect_events":      float64(rep.SuspectEvents),
			"proactive_failovers": float64(rep.ProactiveFailovers),
			"breaker_opens":       float64(rep.BreakerOpens),
			"breaker_fast_fails":  float64(rep.BreakerFastFails),
			"rung_transitions":    float64(rep.RungTransitions),
		}},
		{Name: "gray/hedging", Metrics: map[string]float64{
			"hedged_messages":     float64(rep.HedgedMessages),
			"hedged_bytes":        float64(rep.HedgedBytes),
			"deduped_bytes":       float64(rep.DedupedBytes),
			"hedged_chunks":       float64(rep.HedgedChunks),
			"deduped_chunk_bytes": float64(rep.DedupedChunkBytes),
		}},
		{Name: "gray/detection", Metrics: map[string]float64{
			"injected":   float64(rep.Injected()),
			"detected":   float64(rep.Detected),
			"undetected": float64(rep.Undetected()),
			"repaired":   float64(rep.Repaired),
			"unrepaired": float64(rep.Unrepaired),
		}},
		{Name: "gray/duel", Metrics: map[string]float64{
			"static_seconds":   rep.DuelStaticSeconds,
			"adaptive_seconds": rep.DuelAdaptiveSeconds,
			"violations":       float64(len(rep.Violations)),
		}},
		{Name: "gray/latency", Metrics: map[string]float64{
			"onset_to_suspect_seconds":  rep.DuelOnsetToSuspectSeconds,
			"onset_to_reaction_seconds": rep.DuelOnsetToReactionSeconds,
		}},
	}
}

// sweepEntry converts one figure sweep point into a ledger entry.
func sweepEntry(p Point, overlap bool) obs.RunEntry {
	e := costEntry(fmt.Sprintf("%s/%s/mem=%d", p.Strategy, p.Op, p.MemMB), p.Result, overlap)
	e.Metrics["paged_aggregators"] = float64(p.Result.PagedAggregators)
	e.Metrics["domains"] = float64(p.Result.Domains)
	return e
}

// costEntry builds the common ledger entry for one priced run: headline
// numbers plus the per-phase critical-path blame from the round trace.
func costEntry(name string, res *collio.CostResult, overlap bool) obs.RunEntry {
	e := obs.RunEntry{
		Name:          name,
		BandwidthMBps: res.Bandwidth / 1e6,
		WallSeconds:   res.Seconds,
		Rounds:        res.Totals.Rounds,
		Metrics:       map[string]float64{},
	}
	if len(res.Trace) > 0 {
		b := analyze.BlameFromTrace(res.Trace, overlap)
		// Whatever wall time the rounds do not cover (e.g. flat recovery
		// latency) lands in "other" so the blame sums to WallSeconds.
		if rest := res.Seconds - b.Total(); rest > 1e-12 {
			b[analyze.PhaseOther] += rest
		}
		e.Blame = map[string]float64(b)
	}
	return e
}

// topUpRecovery moves stall time the round trace cannot attribute from
// "other" into "recovery": recoverySeconds is the run's authoritative
// recovery total. Only time already parked in "other" moves, so the
// blame total is preserved.
func topUpRecovery(blame map[string]float64, recoverySeconds float64) {
	if blame == nil {
		return
	}
	extra := recoverySeconds - blame[analyze.PhaseRecovery]
	if extra <= 0 {
		return
	}
	if other := blame[analyze.PhaseOther]; extra > other {
		extra = other
	}
	blame[analyze.PhaseRecovery] += extra
	blame[analyze.PhaseOther] -= extra
}
