package bench

import (
	"bytes"
	"fmt"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/faults"
	"mcio/internal/integrity"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/obs"
	"mcio/internal/obs/timeline"
	"mcio/internal/pfs"
	"mcio/internal/stats"
)

// ChaosConfig parameterizes a chaos-soak campaign (mcio chaos).
type ChaosConfig struct {
	// Seed makes the whole campaign — workloads, machine states,
	// corruption schedules, bit positions — a pure function of one number.
	Seed uint64
	// Ops is how many randomized collective operations the soak runs.
	Ops int
	// Rate scales the silent-corruption event rates (1 ≈ a couple of
	// events per entity per operation); 0 disables corruption entirely.
	Rate float64
	// Repair enables the detect→re-request→rewrite path. With it off the
	// campaign instead proves that every injected corruption is detected.
	Repair bool
	// Obs, when non-nil, receives the campaign counters (chaos.*,
	// integrity.*) and the planners' metrics.
	Obs *obs.Observer
	// Timeline, when non-nil, receives a sequence-ordered journal entry
	// per op that detected corruption (the integrity layer is
	// concurrent, so per-incident simulated timestamps do not exist).
	Timeline *timeline.Recorder
}

// ChaosReport is the outcome of a campaign: what was injected, what the
// integrity layer did about it, how often the degradation ladder fired,
// and every invariant violation found (an empty Violations list is the
// pass condition).
type ChaosReport struct {
	Ops            int
	CollectiveOps  int // ops that ran the full aggregation path
	ShrunkOps      int // ops placed only after shrinking the appetite
	IndependentOps int // ops that fell back to independent I/O
	InjectedFlips  int
	InjectedTorn   int
	Detected       int64
	Repaired       int64
	Unrepaired     int64
	RewrittenBytes int64
	SumsStamped    int64
	SumsVerified   int64
	Violations     []string
}

// Injected returns the total corruptions actually injected.
func (r *ChaosReport) Injected() int { return r.InjectedFlips + r.InjectedTorn }

// Undetected returns injected corruptions the integrity layer never
// flagged — the number the whole tentpole exists to hold at zero.
func (r *ChaosReport) Undetected() int {
	u := r.Injected() - int(r.Detected)
	if u < 0 {
		u = 0
	}
	return u
}

// String renders the campaign summary.
func (r *ChaosReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: %d ops (%d collective, %d shrunk, %d independent)\n",
		r.Ops, r.CollectiveOps, r.ShrunkOps, r.IndependentOps)
	fmt.Fprintf(&b, "corruptions: %d injected (%d bit flips, %d torn writes), %d detected, %d repaired, %d unrepaired, %d undetected\n",
		r.Injected(), r.InjectedFlips, r.InjectedTorn, r.Detected, r.Repaired, r.Unrepaired, r.Undetected())
	fmt.Fprintf(&b, "integrity: %d sums stamped, %d verified, %d bytes rewritten\n",
		r.SumsStamped, r.SumsVerified, r.RewrittenBytes)
	if len(r.Violations) == 0 {
		fmt.Fprintf(&b, "invariants: all held\n")
	} else {
		fmt.Fprintf(&b, "invariants: %d VIOLATED\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
		}
	}
	return b.String()
}

// chaosMix mixes the campaign seed with an operation index into an
// independent per-op seed (SplitMix64 increments, like the fault
// streams).
func chaosMix(seed uint64, op int) uint64 {
	return seed ^ (uint64(op)+1)*0x9e3779b97f4a7c15
}

// Chaos runs a seeded randomized soak: every operation draws a fresh
// workload, machine state and silent-corruption schedule, runs a real
// write (collective, shrunk, or independent per the degradation ladder)
// followed by a real read-back, and checks the invariant battery —
// domains tile the request union exactly once, chosen aggregators
// respect Mem_min and N_ah when memory is ample, written bytes are
// conserved (plan bytes + repair rewrites, even when writes are torn),
// detected corruptions equal injected ones, and with repair enabled the
// final file is byte-identical to the fault-free oracle and reads return
// exactly what was written. Violations are collected, not fatal, so one
// bad op cannot hide later ones. The campaign is deterministic: same
// config, same report.
func Chaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 50
	}
	if cfg.Rate < 0 {
		return nil, fmt.Errorf("bench: negative chaos corruption rate %g", cfg.Rate)
	}

	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = 64 // small stripes: several object accesses per extent
	fsys, err := pfs.NewFileSystem(fsCfg)
	if err != nil {
		return nil, err
	}

	rep := &ChaosReport{Ops: cfg.Ops}
	fail := func(op int, format string, args ...any) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("op %d: %s", op, fmt.Sprintf(format, args...)))
	}

	// The campaign always runs observed: planner counters are how chaos
	// learns whether a plan used fallback placements (which may lawfully
	// exceed N_ah). A caller-supplied observer additionally exports
	// everything.
	o := cfg.Obs
	if o == nil {
		o = obs.New()
	}
	o.Counter("chaos.ops").Add(int64(cfg.Ops))
	cViol := o.Counter("chaos.invariant_violations")
	cFallback := o.Counter("plan.fallback_placements", obs.L("strategy", core.New().Name()))

	for op := 0; op < cfg.Ops; op++ {
		opSeed := chaosMix(cfg.Seed, op)
		r := stats.NewRNG(opSeed)

		// Machine and tunables for this operation.
		ranks := 4 + r.Intn(6)
		perNode := 1 + r.Intn(3)
		topo, err := mpi.BlockTopology(ranks, perNode)
		if err != nil {
			return nil, err
		}
		mc := machine.Testbed640()
		mc.Nodes = topo.Nodes()
		params := collio.DefaultParams(int64(64 + r.Intn(192)))
		params.MsgInd = int64(100 + r.Intn(400))
		params.MsgGroup = int64(500 + r.Intn(2000))
		params.MemMin = int64(64 + r.Intn(192))
		params.Nah = 1 + r.Intn(4)

		// Memory scenario: mostly ample (the Mem_min/N_ah invariant is
		// assertable), sometimes tight (fallback placements), sometimes
		// fully starved (the degradation ladder must fire).
		avail := make([]int64, topo.Nodes())
		scenario := r.Intn(4)
		for i := range avail {
			switch scenario {
			case 3: // starved: no node clears Mem_min
				avail[i] = int64(r.Intn(int(params.MemMin)))
			case 2: // tight: a mix straddling Mem_min
				avail[i] = int64(r.Intn(3)) * params.MemMin / 2
			default: // ample
				avail[i] = 1 << 20
			}
		}
		ample := scenario <= 1

		ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail,
			FS: fsCfg, Params: params, Obs: o}

		// Workload: a permuted block list sliced among ranks, with holes
		// and occasional cross-rank overlaps.
		blocks := 16 + r.Intn(17)
		blockLen := int64(24 + r.Intn(101))
		reqs := make([]collio.RankRequest, ranks)
		for i := range reqs {
			reqs[i].Rank = i
		}
		for i, b := range r.Perm(blocks) {
			if r.Float64() < 0.15 {
				continue // hole
			}
			ext := pfs.Extent{Offset: int64(b) * blockLen, Length: blockLen}
			reqs[i%ranks].Extents = append(reqs[i%ranks].Extents, ext)
			if r.Float64() < 0.1 {
				// Overlap: a second rank claims the same block; rank order
				// decides the outcome, identically in executor and oracle.
				reqs[(i+1)%ranks].Extents = append(reqs[(i+1)%ranks].Extents, ext)
			}
		}

		// Corruption schedule and its data-level replayer.
		spec := faults.DefaultSpec(opSeed, 1).WithRate(0).WithCorruption(cfg.Rate)
		fplan, err := spec.Generate(topo.Nodes(), fsCfg.Targets)
		if err != nil {
			return nil, err
		}
		ranksByNode := make([][]int, topo.Nodes())
		for rank := 0; rank < ranks; rank++ {
			n := topo.NodeOf(rank)
			ranksByNode[n] = append(ranksByNode[n], rank)
		}
		corr := faults.NewCorrupter(fplan, ranksByNode)
		fsys.SetCorrupter(corr)

		// MaxRepairs well above any plausible per-rank pileup of pending
		// flips: each resend consumes one more pending corruption event, so
		// a budget larger than the pileup guarantees the chain ends clean.
		chk := integrity.NewChecker(integrity.Config{Seed: opSeed, Repair: cfg.Repair, MaxRepairs: 32})
		chk.SetObserver(o)

		// Plan through the degradation ladder.
		fallbackBefore := cFallback.Value()
		dp, err := core.New().PlanWithDegradation(ctx, reqs)
		if err != nil {
			fail(op, "planning failed: %v", err)
			continue
		}
		effCtx := *ctx
		effCtx.Params = dp.Params
		switch {
		case dp.Independent:
			rep.IndependentOps++
		case dp.Shrinks > 0:
			rep.ShrunkOps++
		default:
			rep.CollectiveOps++
		}
		if scenario == 3 && !dp.Independent && dp.Shrinks == 0 {
			fail(op, "starved machine produced an undegraded plan")
		}

		var expectedWritten int64
		if dp.Independent {
			for _, q := range reqs {
				expectedWritten += q.Bytes()
			}
		} else {
			// Invariant: domains tile the request union exactly once.
			if err := dp.Plan.Validate(reqs); err != nil {
				fail(op, "plan tiling violated: %v", err)
				continue
			}
			if ample && cFallback.Value() == fallbackBefore {
				// Invariant: absent fallback placements (which may lawfully
				// over-pack a host when every related node is saturated),
				// placement honours N_ah and only uses hosts that cleared
				// Mem_min.
				aggsOnNode := map[int]int{}
				for _, d := range dp.Plan.Domains {
					aggsOnNode[d.AggNode]++
					if avail[d.AggNode] < dp.Params.MemMin {
						fail(op, "aggregator on node %d with avail %d < MemMin %d",
							d.AggNode, avail[d.AggNode], dp.Params.MemMin)
					}
				}
				for n, c := range aggsOnNode {
					if c > dp.Params.Nah {
						fail(op, "node %d hosts %d aggregators > Nah %d", n, c, dp.Params.Nah)
					}
				}
			}
			expectedWritten = dp.Plan.TotalBytes()
		}

		// Build rank buffers and the oracle.
		data := make([]collio.RankData, ranks)
		var size int64
		for i := range data {
			buf := make([]byte, reqs[i].Bytes())
			fillChaosPattern(op, i, buf)
			data[i] = collio.RankData{Req: reqs[i], Buf: buf}
			for _, e := range pfs.NormalizeExtents(reqs[i].Extents) {
				if e.End() > size {
					size = e.End()
				}
			}
		}
		oracle := make([]byte, size)
		for i := range data {
			var pos int64
			for _, e := range pfs.NormalizeExtents(reqs[i].Extents) {
				copy(oracle[e.Offset:e.End()], data[i].Buf[pos:pos+e.Length])
				pos += e.Length
			}
		}

		file := fsys.Open(fmt.Sprintf("chaos-%d", op))
		writtenBefore := sumI64(fsys.Stats().Written())

		if dp.Independent {
			err = collio.ExecIndependent(&effCtx, data, file, collio.Write, chk)
		} else {
			err = collio.ExecVerified(&effCtx, dp.Plan, data, file, collio.Write, chk, corr)
		}
		if err != nil {
			fail(op, "write failed: %v", err)
			continue
		}

		// Invariant: written bytes are conserved — the plan's bytes plus
		// repair rewrites, torn or not (a torn access still acknowledges
		// its full request; that is what makes the tear silent).
		writtenDelta := sumI64(fsys.Stats().Written()) - writtenBefore
		if want := expectedWritten + chk.Report().RewrittenBytes; writtenDelta != want {
			fail(op, "bytes-written conservation violated: delta %d != planned %d + rewritten %d",
				writtenDelta, expectedWritten, want-expectedWritten)
		}

		// Read back with fresh buffers through the same path.
		readData := make([]collio.RankData, ranks)
		for i := range readData {
			readData[i] = collio.RankData{Req: reqs[i], Buf: make([]byte, len(data[i].Buf))}
		}
		if dp.Independent {
			err = collio.ExecIndependent(&effCtx, readData, file, collio.Read, chk)
		} else {
			err = collio.ExecVerified(&effCtx, dp.Plan, readData, file, collio.Read, chk, corr)
		}
		if err != nil {
			fail(op, "read failed: %v", err)
			continue
		}

		crep := chk.Report()
		crep.JournalInto(cfg.Timeline.J(), fmt.Sprintf("op %d", op))
		injected := corr.Injected()

		// Invariant: every injected corruption is detected — the torn-write
		// consumption rule and the per-message flip accounting make this an
		// exact equality, with and without repair.
		if int(crep.Detected) != injected {
			fail(op, "detection mismatch: %d corruptions injected, %d detected", injected, crep.Detected)
		}

		if cfg.Repair || injected == 0 {
			// Invariant: with repair on (or nothing injected), the file
			// equals the oracle and reads return what was written.
			if crep.Unrepaired != 0 {
				fail(op, "%d corruptions unrepaired with repair enabled", crep.Unrepaired)
			}
			got := make([]byte, size)
			if _, err := file.ReadAt(got, 0); err != nil {
				fail(op, "oracle readback failed: %v", err)
			} else if !bytes.Equal(got, oracle) {
				fail(op, "file contents differ from fault-free oracle")
			}
			// Each rank's read must return the oracle bytes at its extents
			// (not necessarily its own written bytes: overlapping extents
			// resolve in rank order, so a lower rank reads back the higher
			// rank's data — in executor and oracle alike).
		readCheck:
			for i := range readData {
				var pos int64
				for _, e := range pfs.NormalizeExtents(reqs[i].Extents) {
					if !bytes.Equal(readData[i].Buf[pos:pos+e.Length], oracle[e.Offset:e.End()]) {
						fail(op, "rank %d read differs from oracle at extent [%d,%d)", i, e.Offset, e.End())
						break readCheck
					}
					pos += e.Length
				}
			}
		} else if injected > 0 && crep.Unrepaired == 0 {
			// Repair off: every detection must be accounted unrepaired.
			fail(op, "repair disabled but %d detections left no unrepaired count", crep.Detected)
		}

		rep.InjectedFlips += corr.InjectedFlips()
		rep.InjectedTorn += corr.InjectedTorn()
		rep.Detected += crep.Detected
		rep.Repaired += crep.Repaired
		rep.Unrepaired += crep.Unrepaired
		rep.RewrittenBytes += crep.RewrittenBytes
		rep.SumsStamped += crep.Stamped
		rep.SumsVerified += crep.Verified
	}
	fsys.SetCorrupter(nil)

	o.Counter("chaos.corruptions_injected").Add(int64(rep.Injected()))
	o.Counter("chaos.corruptions_detected").Add(rep.Detected)
	o.Counter("chaos.corruptions_repaired").Add(rep.Repaired)
	o.Counter("chaos.degraded_ops").Add(int64(rep.ShrunkOps + rep.IndependentOps))
	cViol.Add(int64(len(rep.Violations)))
	return rep, nil
}

// fillChaosPattern fills a rank buffer with bytes derived from the op,
// rank and position, so misplaced or stale bytes are detectable.
func fillChaosPattern(op, rank int, buf []byte) {
	for i := range buf {
		buf[i] = byte((op*17 + rank*131 + i*7 + 5) % 251)
	}
}

func sumI64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
