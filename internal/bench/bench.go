// Package bench is the experiment harness: it reconstructs every table and
// figure of the paper's evaluation section on the simulated substrate.
//
// Experiments run "plan + cost": the collective I/O strategies plan at the
// paper's logical configuration (ranks, nodes, access pattern), and the
// cost engine prices the data movement, so the paper's 32 GB runs do not
// need 32 GB of host memory. A Scale factor divides every byte quantity
// (data, buffers, stripe unit, availability) and every fixed per-event
// cost (request overhead, latency) uniformly, which preserves the shape of
// every comparison while keeping run times interactive; Scale=1 reproduces
// the paper's exact byte counts.
package bench

import (
	"fmt"
	"sync"

	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/fastsim"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/tuner"
	"mcio/internal/twophase"
)

// MB is a byte count shorthand for experiment parameters.
const MB = int64(1) << 20

// Engine names: the byte path replays one message per rank through the
// simulator; the fast path prices the same rounds analytically from
// aggregate per-route quantities (internal/fastsim). The two are
// cross-checked to bit-identical results on every figure cell.
const (
	EngineBytes = "bytes"
	EngineFast  = "fast"
)

// Engines lists the pricing engines a sweep can run on, in display
// order — the single source of truth for the CLI's -engine usage text.
var Engines = []string{EngineBytes, EngineFast}

// engineOverride, when set, replaces every sweep Config's engine — how
// `mcio bench -engine` forces a whole run onto one pricing path. Like
// SetParallelism this cannot change any result: the engines price
// bit-identically (the cross-check invariant); only run time differs.
var engineOverride struct {
	sync.Mutex
	name string
}

// SetEngine sets the process-wide pricing-engine override; "" restores
// each experiment's own choice. Unknown names are rejected against
// Engines.
func SetEngine(name string) error {
	if name != "" && name != EngineBytes && name != EngineFast {
		return cliutil.UnknownChoice("engine", name, Engines)
	}
	engineOverride.Lock()
	defer engineOverride.Unlock()
	engineOverride.name = name
	return nil
}

// currentEngineOverride returns the process-wide engine override, or ""
// when each experiment picks its own. Experiments that cannot honor an
// override (the chaos campaigns execute real byte-level collectives)
// read it to reject rather than silently ignore.
func currentEngineOverride() string {
	engineOverride.Lock()
	defer engineOverride.Unlock()
	return engineOverride.name
}

// engine resolves the pricing engine a sweep over c runs on: the
// process-wide override when set, else c.Engine, else the byte path.
func (c Config) engine() string {
	engineOverride.Lock()
	defer engineOverride.Unlock()
	if engineOverride.name != "" {
		return engineOverride.name
	}
	if c.Engine != "" {
		return c.Engine
	}
	return EngineBytes
}

// Config fixes one experiment's platform and sweep.
type Config struct {
	Name         string
	Ranks        int
	RanksPerNode int
	Targets      int // storage targets (OSTs)

	// Scale divides every byte size and fixed cost; 1 = paper-exact.
	Scale int64
	// Seed drives the availability variance reproducibly.
	Seed uint64
	// SigmaMB is the per-node availability standard deviation in
	// paper-scale MB. The paper draws available memory from a normal
	// distribution with mean equal to the baseline's aggregator buffer
	// size and σ = 50, so the small end of the sweep has enormous
	// *relative* variance — exactly where the paper's improvements are
	// largest. The sigma ablation sweeps this.
	SigmaMB float64
	// HeadroomFactor sets each node's mean available aggregation memory
	// as a multiple of the per-aggregator buffer mean. The paper's mean
	// equals the buffer size, i.e. headroom 1 — the default (0 means 1).
	HeadroomFactor float64
	// MemMB is the sweep of mean per-aggregator memory, in paper-scale MB.
	MemMB []int

	// Strategy tunables (paper-scale bytes; scaled internally).
	MsgIndMB       int // Msg_ind; 0 means "equal to the collective buffer"
	MsgGroupFactor int // Msg_group = factor * Msg_ind
	Nah            int

	// Overlap prices communication/I-O phases as pipelined.
	Overlap bool

	// Preset names the machine design point (machine.PresetNames); empty
	// means the paper's testbed.
	Preset string
	// Engine selects the pricing engine (Engines); empty means the byte
	// path.
	Engine string
}

// Validate reports an error for an unusable experiment configuration.
func (c Config) Validate() error {
	switch {
	case c.Ranks <= 0 || c.RanksPerNode <= 0:
		return fmt.Errorf("bench %s: ranks/ranksPerNode must be positive", c.Name)
	case c.Targets <= 0:
		return fmt.Errorf("bench %s: targets must be positive", c.Name)
	case c.Scale <= 0:
		return fmt.Errorf("bench %s: scale must be positive", c.Name)
	case c.SigmaMB < 0:
		return fmt.Errorf("bench %s: sigmaMB must be non-negative", c.Name)
	case len(c.MemMB) == 0:
		return fmt.Errorf("bench %s: empty memory sweep", c.Name)
	}
	for _, m := range c.MemMB {
		if m <= 0 {
			return fmt.Errorf("bench %s: memory size %d must be positive", c.Name, m)
		}
	}
	if c.Engine != "" && c.Engine != EngineBytes && c.Engine != EngineFast {
		return fmt.Errorf("bench %s: %w", c.Name, cliutil.UnknownChoice("engine", c.Engine, Engines))
	}
	preset, err := machine.Preset(c.Preset)
	if err != nil {
		return fmt.Errorf("bench %s: %w", c.Name, err)
	}
	// Preset × sweep conflict: context() clamps per-node availability to
	// the machine's DRAM, so a sweep point whose mean endowment exceeds
	// MemPerNode would silently flatten against the clamp instead of
	// measuring anything. Reject the combination outright.
	headroom := c.HeadroomFactor
	if headroom <= 0 {
		headroom = 1
	}
	for _, m := range c.MemMB {
		mean := float64(c.scaled(int64(m)*MB)) * headroom
		if mean > float64(preset.MemPerNode) {
			return fmt.Errorf("bench %s: memory sweep point %d MB (scale %d, headroom %g) asks for %.0f bytes per node, but preset %q has only %d; shrink the sweep or pick a larger machine",
				c.Name, m, c.Scale, headroom, mean, preset.Name, preset.MemPerNode)
		}
	}
	return nil
}

// Workload is what a sweep runs: any generator with per-rank requests and
// a total size (workload.CollPerf and workload.IOR satisfy it).
type Workload interface {
	Requests() ([]collio.RankRequest, error)
	TotalBytes() int64
}

// Point is one measured cell of a figure.
type Point struct {
	MemMB    int    // paper-scale mean memory per aggregator
	Strategy string // "two-phase" or "memory-conscious"
	Op       string // "write" or "read"
	MBps     float64
	Result   *collio.CostResult
}

// Series is one figure's worth of points.
type Series struct {
	Name     string
	Workload string
	Config   Config
	Points   []Point
}

// scaled divides a paper-scale byte count by the configured scale,
// clamping at 1.
func (c Config) scaled(bytes int64) int64 {
	v := bytes / c.Scale
	if v < 1 {
		return 1
	}
	return v
}

// nahOrDefault returns the configured N_ah or the default of 4.
func (c Config) nahOrDefault() int {
	if c.Nah > 0 {
		return c.Nah
	}
	return 4
}

// context builds the planning context for one sweep point. zs is the
// per-node standard-normal draw shared by the whole sweep (common random
// numbers: the relative memory endowment of each node is a property of
// the machine state, not of the sweep point, so curves stay smooth).
// totalBytes is the workload volume, used to floor Msg_ind so the domain
// count does not exceed the machine's aggregator slots (Nah per node).
func (c Config) context(memMean int64, zs []float64, totalBytes int64) (*collio.Context, error) {
	topo, err := mpi.BlockTopology(c.Ranks, c.RanksPerNode)
	if err != nil {
		return nil, err
	}
	preset, err := machine.Preset(c.Preset)
	if err != nil {
		return nil, fmt.Errorf("bench %s: %w", c.Name, err)
	}
	mc := preset.Scaled(topo.Nodes())
	mc.NetLatency /= float64(c.Scale)

	fsCfg := pfs.DefaultConfig(c.Targets)
	fsCfg.StripeUnit = c.scaled(1 * MB) // the paper's 1 MB Lustre stripes
	fsCfg.ReqOverhead /= float64(c.Scale)

	// Availability: headroom*mean + σ*z per node (σ absolute, as in the
	// paper), clamped to a small floor — the induced memory scarcity with
	// node-to-node variance.
	headroom := c.HeadroomFactor
	if headroom <= 0 {
		headroom = 1
	}
	sigma := float64(c.scaled(int64(c.SigmaMB * float64(MB))))
	floor := c.scaled(64 << 10) // starved nodes keep only a sliver
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		v := int64(float64(memMean)*headroom + sigma*zs[i])
		if v < floor {
			v = floor
		}
		if v > mc.MemPerNode {
			v = mc.MemPerNode
		}
		avail[i] = v
	}

	nah := c.nahOrDefault()
	msgInd := memMean
	if c.MsgIndMB > 0 {
		msgInd = c.scaled(int64(c.MsgIndMB) * MB)
	}
	if msgInd < memMean {
		msgInd = memMean
	}
	// Saturation floor, the paper's "empirically determined" Msg_ind for
	// the configuration: with more file domains than the machine can host
	// aggregation buffers for, the partition would immediately remerge or
	// over-commit. Slots are bounded both by N_ah per node and by how
	// many full buffers the available memory actually holds.
	slots := int64(0)
	for _, a := range avail {
		perNode := a / memMean
		if perNode > int64(nah) {
			perNode = int64(nah)
		}
		slots += perNode
	}
	if slots < 1 {
		slots = 1
	}
	if f := totalBytes / slots; msgInd < f {
		msgInd = f
	}
	groupFactor := c.MsgGroupFactor
	if groupFactor <= 0 {
		groupFactor = 8
	}
	params := collio.Params{
		CollBufSize: memMean,
		MsgInd:      msgInd,
		MsgGroup:    int64(groupFactor) * msgInd,
		Nah:         nah,
		MemMin:      memMean / 2,
	}

	return &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      fsCfg,
		Params:  params,
	}, nil
}

// RunSweep runs the full (strategy × op × memory) grid for one workload,
// comparing the two-phase baseline against the memory-conscious strategy.
func RunSweep(cfg Config, wl Workload, workloadName string) (*Series, error) {
	return runSweep(cfg, wl, workloadName, []collio.Strategy{twophase.New(), core.New()})
}

// RunSweepWithBaselineAggs runs only the two-phase baseline with k
// statically chosen aggregators per node (ROMIO's cb_config_list knob) —
// used by the ablation showing that dynamic placement is not just "more
// aggregators".
func RunSweepWithBaselineAggs(cfg Config, wl Workload, k int) (*Series, error) {
	return runSweep(cfg, wl, "ior", []collio.Strategy{&twophase.Strategy{AggregatorsPerNode: k}})
}

func runSweep(cfg Config, wl Workload, workloadName string, strategies []collio.Strategy) (*Series, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reqs, err := wl.Requests()
	if err != nil {
		return nil, err
	}
	opt := sim.DefaultOptions()
	opt.Overlap = cfg.Overlap
	opt.NahOpt = cfg.nahOrDefault()
	// Per-round traces feed the run ledger's blame attribution; the cost
	// is a few records per round, negligible next to the pricing itself.
	opt.Trace = true
	// Resolve the pricing engine once so all cells of a sweep agree even
	// if the override changes mid-run.
	engine := cfg.engine()
	series := &Series{Name: cfg.Name, Workload: workloadName, Config: cfg}
	// One standard-normal endowment per node for the whole sweep.
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	// Every (memory point × strategy) cell is an independent plan+cost
	// simulation; ForEach fans them across the worker pool. Results land
	// in per-cell slots flattened in index order, so the series — and
	// everything rendered from it — is byte-identical to the serial run.
	type cell struct{ pi, si int }
	cells := make([]cell, 0, len(cfg.MemMB)*len(strategies))
	for pi := range cfg.MemMB {
		for si := range strategies {
			cells = append(cells, cell{pi, si})
		}
	}
	cellResults := make([][]Point, len(cells))
	err = ForEach(len(cells), func(ci int) error {
		c := cells[ci]
		memMB := cfg.MemMB[c.pi]
		s := strategies[c.si]
		memMean := cfg.scaled(int64(memMB) * MB)
		// Same availability state for both strategies and both
		// directions: they face the identical machine, as in the
		// paper's runs.
		ctx, err := cfg.context(memMean, zs, wl.TotalBytes())
		if err != nil {
			return err
		}
		plan, err := collio.CachedPlan(s, ctx, reqs)
		if err != nil {
			return fmt.Errorf("bench %s: %s at %d MB: %w", cfg.Name, s.Name(), memMB, err)
		}
		// Both directions price from the same engine state: the fast path
		// derives the plan's round shape once and reuses it for write and
		// read, the byte path replays the rank messages per direction.
		price := func(op collio.Op) (*collio.CostResult, error) {
			return collio.Cost(ctx, plan, reqs, op, opt)
		}
		if engine == EngineFast {
			fs, err := fastsim.New(ctx, plan, reqs)
			if err != nil {
				return err
			}
			price = func(op collio.Op) (*collio.CostResult, error) {
				return fs.Cost(op, opt)
			}
		}
		for _, op := range []collio.Op{collio.Write, collio.Read} {
			res, err := price(op)
			if err != nil {
				return err
			}
			cellResults[ci] = append(cellResults[ci], Point{
				MemMB:    memMB,
				Strategy: s.Name(),
				Op:       op.String(),
				MBps:     res.Bandwidth / 1e6,
				Result:   res,
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pts := range cellResults {
		series.Points = append(series.Points, pts...)
	}
	return series, nil
}

// find returns the point for (memMB, strategy, op), or nil.
func (s *Series) find(memMB int, strategy, op string) *Point {
	for i := range s.Points {
		p := &s.Points[i]
		if p.MemMB == memMB && p.Strategy == strategy && p.Op == op {
			return p
		}
	}
	return nil
}

// Improvement returns the memory-conscious strategy's mean relative
// improvement over two-phase for the given op across the sweep, as a
// fraction (0.342 = +34.2%) — the aggregate the paper reports per figure.
func (s *Series) Improvement(op string) float64 {
	var sum float64
	var n int
	for _, memMB := range s.Config.MemMB {
		base := s.find(memMB, "two-phase", op)
		mc := s.find(memMB, "memory-conscious", op)
		if base == nil || mc == nil || base.MBps == 0 {
			continue
		}
		sum += mc.MBps/base.MBps - 1
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TuneWorkload runs the parameter auto-tuner over one workload at the
// 16 MB sweep point of cfg, exposing the paper's deferred
// parameter-determination study as an experiment.
func TuneWorkload(cfg Config, wl Workload) (*tuner.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reqs, err := wl.Requests()
	if err != nil {
		return nil, err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	memMean := cfg.scaled(int64(cfg.MemMB[0]) * MB)
	ctx, err := cfg.context(memMean, zs, wl.TotalBytes())
	if err != nil {
		return nil, err
	}
	opt := sim.DefaultOptions()
	opt.Overlap = cfg.Overlap
	return tuner.Tune(ctx, reqs, collio.Write, opt, tuner.Grid{})
}

// PlansAt plans the Figure 7 workload at one memory point with both
// strategies and returns the plans plus the topology, for inspection
// (cmd/mcio -exp plan).
func PlansAt(cfg Config, memMB int) ([]*collio.Plan, mpi.Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, mpi.Topology{}, err
	}
	wl, _ := Fig7Workload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		return nil, mpi.Topology{}, err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(memMB)*MB), zs, wl.TotalBytes())
	if err != nil {
		return nil, mpi.Topology{}, err
	}
	var plans []*collio.Plan
	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		plan, err := collio.CachedPlan(s, ctx, reqs)
		if err != nil {
			return nil, mpi.Topology{}, err
		}
		plans = append(plans, plan)
	}
	return plans, ctx.Topo, nil
}
