package bench

import (
	"fmt"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
)

// RoundTrace prices one sweep point of the Figure 7 workload with
// round-level tracing and renders a compact timeline for both strategies:
// how the communication and I/O phases interleave, round by round. A
// diagnostic view of what the cost engine actually charges.
func RoundTrace(scale int64, seed uint64, memMB int) (string, error) {
	cfg := Fig7Config(scale, seed)
	cfg.MemMB = []int{memMB}
	wl, name := Fig7Workload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		return "", err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(memMB)*MB), zs, wl.TotalBytes())
	if err != nil {
		return "", err
	}
	opt := sim.DefaultOptions()
	opt.Trace = true

	var b strings.Builder
	fmt.Fprintf(&b, "round trace: %s at %d MB per aggregator\n", name, memMB)
	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		plan, err := s.Plan(ctx, reqs)
		if err != nil {
			return "", err
		}
		if err := plan.Validate(reqs); err != nil {
			return "", err
		}
		res, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
		if err != nil {
			return "", err
		}
		tr := res.Trace
		fmt.Fprintf(&b, "%s: %d rounds, %.4fs total (comm %.4fs, io %.4fs)\n",
			s.Name(), len(tr), res.Seconds, res.Totals.CommTime, res.Totals.IOTime)
		head, elided, tail := elide(len(tr))
		for _, e := range tr[:head] {
			b.WriteString(traceLine(e))
		}
		if elided > 0 {
			fmt.Fprintf(&b, "  ... %d more rounds ...\n", elided)
		}
		for _, e := range tr[len(tr)-tail:] {
			b.WriteString(traceLine(e))
		}
	}
	return b.String(), nil
}

// elide decides how a trace of n rounds is shown: the first head rounds,
// an "... elided ..." marker, and the last tail rounds. Short traces
// (n <= head+tail+1) show every round with no marker: an ellipsis
// standing for zero or one hidden rounds would be longer than the rounds
// themselves. Invariant: head + elided + tail == n, tail == 0 when
// nothing is elided (so the head slice is the whole trace, never
// overlapping the tail slice).
func elide(n int) (head, elided, tail int) {
	const maxHead, maxTail = 3, 2
	if n <= maxHead+maxTail+1 {
		return n, 0, 0
	}
	return maxHead, n - maxHead - maxTail, maxTail
}

// traceLine renders one traced round, including which resource bound it.
func traceLine(e sim.TraceEntry) string {
	return fmt.Sprintf("  round %4d: %8.2fµs comm + %8.2fµs io  (%d msgs, %d ops, %d KB comm, %d KB io)  bound: %s\n",
		e.Round, e.Cost.CommTime*1e6, e.Cost.IOTime*1e6,
		e.Messages, e.IOOps, e.CommBytes>>10, e.IOBytes>>10, e.Binding)
}
