package bench

import (
	"fmt"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
)

// RoundTrace prices one sweep point of the Figure 7 workload with
// round-level tracing and renders a compact timeline for both strategies:
// how the communication and I/O phases interleave, round by round. A
// diagnostic view of what the cost engine actually charges.
func RoundTrace(scale int64, seed uint64, memMB int) (string, error) {
	cfg := Fig7Config(scale, seed)
	cfg.MemMB = []int{memMB}
	wl, name := Fig7Workload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		return "", err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(memMB)*MB), zs, wl.TotalBytes())
	if err != nil {
		return "", err
	}
	opt := sim.DefaultOptions()
	opt.Trace = true

	var b strings.Builder
	fmt.Fprintf(&b, "round trace: %s at %d MB per aggregator\n", name, memMB)
	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		plan, err := s.Plan(ctx, reqs)
		if err != nil {
			return "", err
		}
		if err := plan.Validate(reqs); err != nil {
			return "", err
		}
		res, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
		if err != nil {
			return "", err
		}
		tr := res.Trace
		fmt.Fprintf(&b, "%s: %d rounds, %.4fs total (comm %.4fs, io %.4fs)\n",
			s.Name(), len(tr), res.Seconds, res.Totals.CommTime, res.Totals.IOTime)
		show := tr
		const head, tail = 3, 2
		if len(tr) > head+tail+1 {
			show = tr[:head]
		}
		for _, e := range show {
			fmt.Fprintf(&b, "  round %4d: %8.2fµs comm + %8.2fµs io  (%d msgs, %d ops, %d KB comm, %d KB io)\n",
				e.Round, e.Cost.CommTime*1e6, e.Cost.IOTime*1e6,
				e.Messages, e.IOOps, e.CommBytes>>10, e.IOBytes>>10)
		}
		if len(tr) > head+tail+1 {
			fmt.Fprintf(&b, "  ... %d more rounds ...\n", len(tr)-head-tail)
			for _, e := range tr[len(tr)-tail:] {
				fmt.Fprintf(&b, "  round %4d: %8.2fµs comm + %8.2fµs io  (%d msgs, %d ops, %d KB comm, %d KB io)\n",
					e.Round, e.Cost.CommTime*1e6, e.Cost.IOTime*1e6,
					e.Messages, e.IOOps, e.CommBytes>>10, e.IOBytes>>10)
			}
		}
	}
	return b.String(), nil
}
