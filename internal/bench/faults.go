package bench

import (
	"fmt"
	"strings"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/fastsim"
	"mcio/internal/faults"
	"mcio/internal/obs"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
)

// faultRates is the sweep of fault-rate multipliers: 0 (the inert
// control — must reproduce the clean run exactly) up to 4× the default
// MTBFs.
func faultRates() []float64 { return []float64{0, 0.5, 1, 2, 4} }

// faultedRun prices one strategy under one fault schedule with the
// requested engine. For the memory-conscious strategy the plan is
// rebuilt per run — recovery mutates its partition trees — while the
// baseline's static plan is reusable; both are deterministic functions
// of (cfg, seed, rate), and both engines price any cell bit-identically
// (the CI cross-check gate holds them to it).
func faultedRun(ctx *collio.Context, reqs []collio.RankRequest, strategy string,
	opt sim.Options, spec faults.Spec, engine string) (*collio.FaultResult, error) {
	fplan, err := spec.Generate(ctx.Topo.Nodes(), ctx.FS.Targets)
	if err != nil {
		return nil, err
	}
	inj := faults.NewInjector(fplan)
	var plan *collio.Plan
	var handler collio.FaultHandler
	switch strategy {
	case "memory-conscious":
		s := core.New()
		p, state, err := s.PlanWithState(ctx, reqs)
		if err != nil {
			return nil, err
		}
		plan = p
		handler = &core.Failover{State: state, Detect: spec.DetectSeconds}
	case "two-phase":
		p, err := twophase.New().Plan(ctx, reqs)
		if err != nil {
			return nil, err
		}
		plan = p
		handler = twophase.NewStallRetry(ctx.Avail, spec.StallSeconds)
	default:
		return nil, fmt.Errorf("bench: unknown strategy %q", strategy)
	}
	if err := plan.Validate(reqs); err != nil {
		return nil, err
	}
	if engine == EngineFast {
		return fastsim.CostWithFaults(ctx, plan, reqs, collio.Write, opt, inj, handler)
	}
	return collio.CostWithFaults(ctx, plan, reqs, collio.Write, opt, inj, handler)
}

// FaultPoint is one cell of the resilience sweep: a strategy priced at
// a fault-rate multiplier, with its fault-free reference time.
type FaultPoint struct {
	Rate       float64
	Strategy   string
	RefSeconds float64 // fault-free run, the overhead denominator
	Res        *collio.FaultResult
	Overlap    bool
}

// faultSweepRun prices the IOR write workload of Figure 7 under
// increasing fault rates for both strategies. Everything is a
// deterministic function of (scale, seed).
func faultSweepRun(scale int64, seed uint64) ([]FaultPoint, error) {
	cfg := Fig7Config(scale, seed)
	cfg.Name = "faults"
	cfg.MemMB = []int{16}
	wl, _ := Fig7Workload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		return nil, err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(16*MB), zs, wl.TotalBytes())
	if err != nil {
		return nil, err
	}
	opt := sim.DefaultOptions()
	opt.Overlap = cfg.Overlap
	opt.NahOpt = cfg.nahOrDefault()
	opt.Trace = true
	engine := cfg.engine()

	// Fault-free reference per strategy: the overhead denominator and the
	// fault horizon (schedules span 4× the clean run so mid-operation
	// faults actually land mid-operation). The two references and then
	// every (rate × strategy) cell are independent runs — each rebuilds
	// its own plan, injector and engine from the shared read-only ctx —
	// so both fan out across the worker pool, collected by index.
	strategies := []string{"two-phase", "memory-conscious"}
	refs := make([]float64, len(strategies))
	err = ForEach(len(strategies), func(si int) error {
		res, err := faultedRun(ctx, reqs, strategies[si], opt, faults.DefaultSpec(seed, 1).WithRate(0), engine)
		if err != nil {
			return err
		}
		refs[si] = res.Seconds
		return nil
	})
	if err != nil {
		return nil, err
	}

	rates := faultRates()
	points := make([]FaultPoint, len(rates)*len(strategies))
	err = ForEach(len(points), func(ci int) error {
		rate := rates[ci/len(strategies)]
		si := ci % len(strategies)
		strategy := strategies[si]
		spec := faults.DefaultSpec(seed, refs[si]*4).WithRate(rate)
		res, err := faultedRun(ctx, reqs, strategy, opt, spec, engine)
		if err != nil {
			return fmt.Errorf("bench faults: %s at rate %g: %w", strategy, rate, err)
		}
		points[ci] = FaultPoint{
			Rate: rate, Strategy: strategy, RefSeconds: refs[si],
			Res: res, Overlap: opt.Overlap,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// FaultSweep is the resilience experiment (mcio -exp faults): the IOR
// write workload of Figure 7 priced under increasing fault rates —
// node crashes, memory collapses, stragglers, OST errors, message
// faults — comparing the baseline's stall-and-retry against the
// memory-conscious strategy's remerge-based failover. Reported per
// (rate, strategy): achieved bandwidth, the overhead versus the
// fault-free run, time attributed to recovery, and the recovery-action
// counts.
func FaultSweep(scale int64, seed uint64) (*Table, error) {
	points, err := faultSweepRun(scale, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name: "resilience: IOR write under injected faults (120 ranks, 16 MB per aggregator)",
		Header: []string{"rate", "strategy", "MB/s", "overhead", "recovery s",
			"failovers", "stalls", "replayed", "ost retries", "events"},
	}
	for _, pt := range points {
		res := pt.Res
		events := 0
		for _, n := range res.Injected {
			events += n
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", pt.Rate),
			pt.Strategy,
			fmt.Sprintf("%.1f", res.Bandwidth/1e6),
			fmt.Sprintf("%+.1f%%", (res.Seconds/pt.RefSeconds-1)*100),
			fmt.Sprintf("%.4f", res.RecoverySeconds),
			fmt.Sprintf("%d", res.Failovers),
			fmt.Sprintf("%d", res.Stalls),
			fmt.Sprintf("%d", res.ReplayedRounds),
			fmt.Sprintf("%d", res.StorageRetries),
			fmt.Sprintf("%d", events),
		})
	}
	return t, nil
}

// ObserveFaults is Observe's resilience variant: one faulted run of the
// Figure 7 workload per strategy at the given fault rate, with round
// tracing and the full observer attached, so the exported Chrome trace
// carries the recovery rounds/stall spans and the metrics snapshot the
// faults.*, sim.recovery_* and pfs/mpi counters.
func ObserveFaults(scale int64, seed uint64, memMB int, op collio.Op, rate float64) (*ObserveResult, error) {
	if memMB <= 0 {
		memMB = 16
	}
	if rate < 0 {
		return nil, fmt.Errorf("bench: negative fault rate %g", rate)
	}
	cfg := Fig7Config(scale, seed)
	cfg.MemMB = []int{memMB}
	wl, name := Fig7Workload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		return nil, err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(memMB)*MB), zs, wl.TotalBytes())
	if err != nil {
		return nil, err
	}
	ctx.Obs = obs.New()
	opt := sim.DefaultOptions()
	opt.Trace = true
	opt.Overlap = cfg.Overlap
	opt.NahOpt = cfg.nahOrDefault()
	engine := cfg.engine()

	var b strings.Builder
	fmt.Fprintf(&b, "observe faults: %s, %s, %d MB per aggregator, fault rate %g\n",
		name, op, memMB, rate)
	for _, strategy := range []string{"two-phase", "memory-conscious"} {
		// Clean reference for the horizon, without tracing noise.
		refCtx := *ctx
		refCtx.Obs = nil
		refRes, err := faultedRun(&refCtx, reqs, strategy, opt, faults.DefaultSpec(seed, 1).WithRate(0), engine)
		if err != nil {
			return nil, err
		}
		spec := faults.DefaultSpec(seed, refRes.Seconds*4).WithRate(rate)
		res, err := faultedRun(ctx, reqs, strategy, opt, spec, engine)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "%s: %d rounds, %.4fs simulated (%.1f MB/s), %.4fs in recovery\n",
			strategy, len(res.Trace), res.Seconds, res.Bandwidth/1e6, res.RecoverySeconds)
		fmt.Fprintf(&b, "  failovers %d, stalls %d, replayed rounds %d, ost retries %d, messages delayed %d dropped %d\n",
			res.Failovers, res.Stalls, res.ReplayedRounds, res.StorageRetries,
			res.DelayedMessages, res.DroppedMessages)
		if len(res.Injected) > 0 {
			fmt.Fprintf(&b, "  injected: %v\n", res.Injected)
		}
		for _, line := range bindingTally(res.Trace) {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return &ObserveResult{Obs: ctx.Obs, Summary: b.String()}, nil
}
