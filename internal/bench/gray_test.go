package bench

import (
	"reflect"
	"strings"
	"testing"
)

// The gray acceptance campaign: under seeded gray faults with repair
// on, every invariant must hold — adaptive runs move exactly the
// static payload, every hedged byte is deduplicated, every injected
// corruption is detected and repaired, files match their fault-free
// oracles, and the pinned duel ends with the adaptive plan strictly
// faster.
func TestGrayCampaignClean(t *testing.T) {
	rep, err := Gray(GrayConfig{Seed: 1, Ops: 12, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.SuspectEvents == 0 {
		t.Fatal("campaign raised no suspicion")
	}
	if rep.ProactiveFailovers == 0 {
		t.Fatal("no proactive failover fired")
	}
	if rep.HedgedChunks == 0 || rep.DedupedChunkBytes == 0 {
		t.Fatalf("real-byte hedging idle: %+v", rep)
	}
	if rep.HedgedBytes != rep.DedupedBytes {
		t.Fatalf("hedged %d bytes but deduped %d", rep.HedgedBytes, rep.DedupedBytes)
	}
	if rep.Injected() == 0 || rep.Undetected() != 0 {
		t.Fatalf("detection: %d injected, %d undetected", rep.Injected(), rep.Undetected())
	}
	if rep.Unrepaired != 0 {
		t.Fatalf("%d corruptions unrepaired with repair on", rep.Unrepaired)
	}
	if rep.DuelAdaptiveSeconds >= rep.DuelStaticSeconds {
		t.Fatalf("duel: adaptive %.4fs not faster than static %.4fs",
			rep.DuelAdaptiveSeconds, rep.DuelStaticSeconds)
	}
	if s := rep.String(); !strings.Contains(s, "all held") {
		t.Fatalf("summary %q does not report clean invariants", s)
	}
}

// Same config twice: the gray campaign is a pure function of its
// config.
func TestGrayDeterministic(t *testing.T) {
	a, err := Gray(GrayConfig{Seed: 11, Ops: 6, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gray(GrayConfig{Seed: 11, Ops: 6, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("gray campaigns with identical configs diverged:\n a %+v\n b %+v", a, b)
	}
}

// Zero rate: nothing is injected, nothing goes undetected, and the
// clean-path checks (hedged dedup, oracle identity, the duel) still
// run and hold.
func TestGrayZeroRateClean(t *testing.T) {
	rep, err := Gray(GrayConfig{Seed: 3, Ops: 4, Rate: 0, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if rep.Injected() != 0 {
		t.Fatalf("rate 0 injected %d corruptions", rep.Injected())
	}
	if rep.HedgedChunks == 0 {
		t.Fatal("clean-path hedging idle")
	}
	if rep.DuelAdaptiveSeconds >= rep.DuelStaticSeconds {
		t.Fatalf("duel: adaptive %.4fs not faster than static %.4fs",
			rep.DuelAdaptiveSeconds, rep.DuelStaticSeconds)
	}
}
