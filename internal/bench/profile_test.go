package bench

import (
	"bytes"
	"strings"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/obs/timeline"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

func TestProfileRejectsUnknownExperiment(t *testing.T) {
	if _, err := Profile("fig9", testScale, 42, 16, collio.Write, 0); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestProfileFig6Deterministic is the CI byte-identity gate in
// miniature: the same arguments must produce byte-identical HTML and
// CSV reports across runs.
func TestProfileFig6Deterministic(t *testing.T) {
	render := func() (string, string, string) {
		res, err := Profile("fig6", testScale, 42, 16, collio.Write, 0)
		if err != nil {
			t.Fatal(err)
		}
		var html, csv bytes.Buffer
		if err := timeline.WriteReport(&html, res.Rec, res.Sat); err != nil {
			t.Fatal(err)
		}
		if err := timeline.WriteCSV(&csv, res.Rec); err != nil {
			t.Fatal(err)
		}
		return res.Summary, html.String(), csv.String()
	}
	s1, h1, c1 := render()
	s2, h2, c2 := render()
	if s1 != s2 {
		t.Error("profile summary not deterministic")
	}
	if h1 != h2 {
		t.Error("timeline HTML not byte-identical across reruns")
	}
	if c1 != c2 {
		t.Error("timeline CSV not byte-identical across reruns")
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(h1, banned) {
			t.Errorf("timeline HTML is not self-contained: found %q", banned)
		}
	}
}

// TestProfileGrayJournalOrdering pins the acceptance scenario: the
// seeded gray duel must show the OSTSlowdown onset, then a suspicion
// crossing, then a breaker-open on the same entity's timeline, with
// both detection lags measured.
func TestProfileGrayJournalOrdering(t *testing.T) {
	res, err := Profile("gray", testScale, 42, 16, collio.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	victim := timeline.Ent("ost", 0)
	var onset, suspect, breakerOpen float64 = -1, -1, -1
	for _, ev := range res.Rec.J().Events() {
		if ev.Entity != victim || ev.T < 0 {
			continue
		}
		switch {
		case ev.Kind == timeline.EvFault && strings.Contains(ev.Detail, "ost-slowdown") && onset < 0:
			onset = ev.T
		case ev.Kind == timeline.EvSuspect && suspect < 0:
			suspect = ev.T
		case ev.Kind == timeline.EvBreakerOpen && breakerOpen < 0:
			breakerOpen = ev.T
		}
	}
	if onset < 0 || suspect < 0 || breakerOpen < 0 {
		t.Fatalf("missing events on %s: onset=%v suspect=%v breaker-open=%v",
			victim, onset, suspect, breakerOpen)
	}
	if !(onset <= suspect && suspect <= breakerOpen) {
		t.Fatalf("events out of order on %s: onset=%v suspect=%v breaker-open=%v",
			victim, onset, suspect, breakerOpen)
	}
	// The victim's busy series exists alongside the events — one
	// timeline carries both.
	snap := res.Rec.Snapshot()
	found := false
	for _, s := range snap {
		if s.Entity == victim && s.Metric == "busy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no busy series recorded for %s", victim)
	}
	if !strings.Contains(res.Summary, "duel detection lag: onset->suspect") {
		t.Error("summary missing the duel detection-lag line")
	}
}

// TestGrayLedgerCarriesDetectionLag checks the ledger plumbing the CI
// trend gate consumes: the gray campaign's report converts into a
// gray/latency entry with both lag metrics measured.
func TestGrayLedgerCarriesDetectionLag(t *testing.T) {
	rep, err := Gray(GrayConfig{Seed: 42, Ops: 2, Rate: 2, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DuelOnsetToSuspectSeconds <= 0 || rep.DuelOnsetToReactionSeconds <= 0 {
		t.Fatalf("duel lags unmeasured: suspect=%v reaction=%v",
			rep.DuelOnsetToSuspectSeconds, rep.DuelOnsetToReactionSeconds)
	}
	var entry map[string]float64
	for _, e := range grayEntries(rep) {
		if e.Name == "gray/latency" {
			entry = e.Metrics
		}
	}
	if entry == nil {
		t.Fatal("no gray/latency ledger entry")
	}
	if entry["onset_to_suspect_seconds"] != rep.DuelOnsetToSuspectSeconds ||
		entry["onset_to_reaction_seconds"] != rep.DuelOnsetToReactionSeconds {
		t.Fatalf("ledger metrics %v do not match report lags", entry)
	}
}

// TestCostUnchangedByTimeline is the pure-observation invariant:
// attaching a recorder must not change a priced result, so committed
// perf baselines stay valid with or without profiling.
func TestCostUnchangedByTimeline(t *testing.T) {
	price := func(rec *timeline.Recorder) float64 {
		cfg := Fig6Config(testScale, 42)
		wl, _, err := Fig6Workload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.MemMB = []int{16}
		reqs, err := wl.Requests()
		if err != nil {
			t.Fatal(err)
		}
		nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
		r := stats.NewRNG(cfg.Seed)
		zs := make([]float64, nodes)
		for i := range zs {
			zs[i] = r.Normal(0, 1)
		}
		ctx, err := cfg.context(cfg.scaled(16*MB), zs, wl.TotalBytes())
		if err != nil {
			t.Fatal(err)
		}
		ctx.Timeline = rec
		opt := sim.DefaultOptions()
		opt.Overlap = cfg.Overlap
		plan, err := core.New().Plan(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	bare := price(nil)
	recorded := price(timeline.NewRecorder(0, 0))
	if bare != recorded {
		t.Fatalf("recorder changed the priced result: %v without vs %v with", bare, recorded)
	}
}
