package bench

import (
	"fmt"

	"mcio/internal/workload"
)

// RandomVsInterleaved runs the "Or Random" half of IOR's name: the same
// volume per process placed either in the segmented interleaved layout or
// at seeded-random transfer-sized slots, for both strategies at one
// memory point. Random placement destroys the locality the group division
// and data-local placement exploit, so it bounds how much of the
// memory-conscious win depends on locality versus memory awareness.
func RandomVsInterleaved(scale int64, seed uint64, memMB int) (*Table, error) {
	if memMB <= 0 {
		memMB = 16
	}
	cfg := Fig7Config(scale, seed)
	cfg.MemMB = []int{memMB}
	block := cfg.scaled(4 * MB)

	t := &Table{
		Name: fmt.Sprintf("IOR interleaved vs random offsets (120 ranks, %d MB per aggregator, write MB/s)", memMB),
		Header: []string{
			"layout", "2ph write", "mc write", "improvement",
		},
	}
	for _, random := range []bool{false, true} {
		w := workload.IOR{
			Ranks:        cfg.Ranks,
			BlockSize:    block,
			TransferSize: block,
			Segments:     8,
			Random:       random,
			Seed:         seed,
		}
		label := "interleaved"
		name := cfg.Name + "-interleaved"
		if random {
			label = "random"
			name = cfg.Name + "-random"
		}
		runCfg := cfg
		runCfg.Name = name
		s, err := RunSweep(runCfg, w, label)
		if err != nil {
			return nil, err
		}
		base := s.find(memMB, "two-phase", "write")
		mc := s.find(memMB, "memory-conscious", "write")
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.1f", base.MBps),
			fmt.Sprintf("%.1f", mc.MBps),
			fmt.Sprintf("%+.1f%%", (mc.MBps/base.MBps-1)*100),
		})
	}
	return t, nil
}
