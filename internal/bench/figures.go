package bench

import (
	"fmt"
	"math"

	"mcio/internal/workload"
)

// paperSweepMB is the aggregator-memory axis of Figures 6-8: 2 MB to
// 128 MB per aggregator.
func paperSweepMB() []int { return []int{2, 4, 8, 16, 32, 64, 128} }

// DefaultScale keeps the full figure set interactive (seconds, not
// minutes) while preserving every comparison's shape; pass 1 for
// paper-exact byte counts.
const DefaultScale = 64

// Fig6Config is the platform of Figure 6: coll_perf, 120 processes on 10
// twelve-core nodes (the paper's testbed node shape), a 2048³ 4-byte
// array = 32 GB file on 1 MB-striped storage.
func Fig6Config(scale int64, seed uint64) Config {
	return Config{
		Name:         "fig6-collperf-120",
		Ranks:        120,
		RanksPerNode: 12,
		Targets:      16,
		Scale:        scale,
		Seed:         seed,
		SigmaMB:      50,
		MemMB:        paperSweepMB(),
		MsgIndMB:     32,
	}
}

// Fig6Workload scales the 2048³ array: the cube edge shrinks by the cube
// root of Scale so the file volume scales linearly.
func Fig6Workload(cfg Config) (Workload, string, error) {
	edge := int64(math.Round(2048 / math.Cbrt(float64(cfg.Scale))))
	if edge < 8 {
		edge = 8
	}
	grid, err := workload.DimsCreate(cfg.Ranks)
	if err != nil {
		return nil, "", err
	}
	c := workload.CollPerf{ArrayDim: edge, ElemBytes: 4, Grid: grid}
	name := fmt.Sprintf("coll_perf %d^3 x4B (%d MB file)", edge, c.TotalBytes()/MB)
	return c, name, nil
}

// Fig6 regenerates Figure 6: coll_perf write and read bandwidth vs
// per-aggregator memory, two-phase vs memory-conscious, 120 processes.
func Fig6(scale int64, seed uint64) (*Series, error) {
	cfg := Fig6Config(scale, seed)
	wl, name, err := Fig6Workload(cfg)
	if err != nil {
		return nil, err
	}
	return RunSweep(cfg, wl, name)
}

// Fig7Config is the platform of Figure 7: IOR, 120 processes, 32 MB of
// I/O data per process, interleaved (segmented) layout.
func Fig7Config(scale int64, seed uint64) Config {
	return Config{
		Name:         "fig7-ior-120",
		Ranks:        120,
		RanksPerNode: 12,
		Targets:      16,
		Scale:        scale,
		Seed:         seed,
		SigmaMB:      50,
		MemMB:        paperSweepMB(),
		MsgIndMB:     32,
	}
}

// Fig7Workload builds the interleaved IOR pattern: 8 segments of 4 MB
// blocks = 32 MB per process (scaled).
func Fig7Workload(cfg Config) (Workload, string) {
	block := cfg.scaled(4 * MB)
	w := workload.IOR{
		Ranks:        cfg.Ranks,
		BlockSize:    block,
		TransferSize: block,
		Segments:     8,
	}
	name := fmt.Sprintf("IOR interleaved %d ranks, %d MB/proc", cfg.Ranks, w.BytesPerRank()*cfg.Scale/MB)
	return w, name
}

// Fig7 regenerates Figure 7: IOR write and read bandwidth vs
// per-aggregator memory at 120 cores.
func Fig7(scale int64, seed uint64) (*Series, error) {
	cfg := Fig7Config(scale, seed)
	wl, name := Fig7Workload(cfg)
	return RunSweep(cfg, wl, name)
}

// Fig8Config is the platform of Figure 8: IOR at 1080 processes (90
// twelve-core nodes), aggregation memory swept 128 MB down to 2 MB.
func Fig8Config(scale int64, seed uint64) Config {
	return Config{
		Name:         "fig8-ior-1080",
		Ranks:        1080,
		RanksPerNode: 12,
		Targets:      32,
		Scale:        scale,
		Seed:         seed,
		SigmaMB:      50,
		MemMB:        paperSweepMB(),
		MsgIndMB:     32,
	}
}

// Fig8Workload builds the 1080-rank interleaved IOR pattern.
func Fig8Workload(cfg Config) (Workload, string) {
	block := cfg.scaled(4 * MB)
	w := workload.IOR{
		Ranks:        cfg.Ranks,
		BlockSize:    block,
		TransferSize: block,
		Segments:     8,
	}
	name := fmt.Sprintf("IOR interleaved %d ranks, %d MB/proc", cfg.Ranks, w.BytesPerRank()*cfg.Scale/MB)
	return w, name
}

// Fig8 regenerates Figure 8: IOR write and read bandwidth vs
// per-aggregator memory at 1080 cores.
func Fig8(scale int64, seed uint64) (*Series, error) {
	cfg := Fig8Config(scale, seed)
	wl, name := Fig8Workload(cfg)
	return RunSweep(cfg, wl, name)
}

// FigExaConfig is the extrapolation experiment the paper argues toward
// but could not run: the Figure 8 IOR sweep pushed to the Table 1
// exascale design point — one million ranks on ten thousand nodes — and
// priced on the analytical fast path, since the byte path would
// materialize a million messages per round. The memory axis keeps the
// scarce half of the paper sweep: at ~10 MB per core, 64 MB aggregator
// buffers are already a luxury.
func FigExaConfig(scale int64, seed uint64) Config {
	return Config{
		Name:         "fig-exa-ior-1m",
		Ranks:        1_000_000,
		RanksPerNode: 100,
		Targets:      1024,
		Scale:        scale,
		Seed:         seed,
		SigmaMB:      50,
		MemMB:        []int{8, 16, 32, 64},
		MsgIndMB:     32,
		Preset:       "exascale2018",
		Engine:       EngineFast,
	}
}

// FigExaWorkload builds the million-rank interleaved IOR pattern: two
// segments of 4 MB blocks = 8 MB per process (scaled), ~8 TB of file.
func FigExaWorkload(cfg Config) (Workload, string) {
	block := cfg.scaled(4 * MB)
	w := workload.IOR{
		Ranks:        cfg.Ranks,
		BlockSize:    block,
		TransferSize: block,
		Segments:     2,
	}
	name := fmt.Sprintf("IOR interleaved %d ranks, %d MB/proc", cfg.Ranks, w.BytesPerRank()*cfg.Scale/MB)
	return w, name
}

// FigExa runs the exascale sweep on the fast path.
func FigExa(scale int64, seed uint64) (*Series, error) {
	cfg := FigExaConfig(scale, seed)
	wl, name := FigExaWorkload(cfg)
	return RunSweep(cfg, wl, name)
}
