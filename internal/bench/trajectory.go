package bench

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/obs/analyze"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

// TrajectoryPoint is one design point of the Table 1 trajectory: both
// strategies priced on the interpolated machine at parameter t.
type TrajectoryPoint struct {
	T          float64
	MemPerCore int64
	Results    map[string]*collio.CostResult // strategy name -> priced run
	Overlap    bool
}

// trajectoryRun prices both strategies on machine design points
// interpolated along the paper's Table 1 trajectory from the 2010
// petascale machine (t=0) to the projected 2018 exascale machine (t=1).
// The workload and node count are held fixed; only the per-node
// resource ratios change — memory per core shrinking ~120x along the
// way — so the sweep shows where on the road to exascale
// memory-conscious placement starts to matter.
func trajectoryRun(scale int64, seed uint64) ([]TrajectoryPoint, error) {
	const (
		nodes        = 16
		ranksPerNode = 12
		ranks        = nodes * ranksPerNode
	)
	r := stats.NewRNG(seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	// Design points are independent simulations; fan them across the
	// worker pool, collected by index so the table order never changes.
	ts := []float64{0, 0.25, 0.5, 0.75, 1}
	points := make([]TrajectoryPoint, len(ts))
	err := ForEach(len(ts), func(pi int) error {
		tt := ts[pi]
		mc := machine.Interpolate(tt).Scaled(nodes)
		mc.NetLatency /= float64(scale)

		// The aggregation budget tracks the design point: a few cores'
		// worth of the node's memory, scaled like everything else.
		aggMem := 4 * mc.MemPerCore() / scale
		if aggMem < 1 {
			aggMem = 1
		}
		topo, err := mpi.BlockTopology(ranks, ranksPerNode)
		if err != nil {
			return err
		}
		avail := make([]int64, nodes)
		for i := range avail {
			v := int64(float64(aggMem) * (1 + zs[i]))
			if v < aggMem/8 {
				v = aggMem / 8
			}
			if v > mc.MemPerNode {
				v = mc.MemPerNode
			}
			avail[i] = v
		}
		fsCfg := pfs.DefaultConfig(16)
		fsCfg.StripeUnit = maxI64(1, (1<<20)/scale)
		fsCfg.ReqOverhead /= float64(scale)
		fsCfg.TargetBW = mc.IOBandwidth / float64(fsCfg.Targets) / float64(mc.Nodes/nodes+1)

		params := collio.DefaultParams(aggMem)
		params.MsgInd = 4 * aggMem
		params.MsgGroup = 32 * aggMem
		ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail, FS: fsCfg, Params: params}

		w := workload.IOR{Ranks: ranks, BlockSize: 4 * aggMem, TransferSize: 4 * aggMem, Segments: 4}
		reqs, err := w.Requests()
		if err != nil {
			return err
		}
		opt := sim.DefaultOptions()
		opt.Trace = true
		pt := TrajectoryPoint{T: tt, MemPerCore: mc.MemPerCore(),
			Results: map[string]*collio.CostResult{}, Overlap: opt.Overlap}
		for _, s := range []collio.Strategy{twophase.New(), core.New()} {
			plan, err := collio.CachedPlan(s, ctx, reqs)
			if err != nil {
				return err
			}
			res, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
			if err != nil {
				return err
			}
			pt.Results[s.Name()] = res
		}
		points[pi] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// Trajectory renders the trajectory sweep as the paper-style table:
// bandwidth and paging per design point.
func Trajectory(scale int64, seed uint64) (*Table, error) {
	points, err := trajectoryRun(scale, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name: "table-1 trajectory: petascale (t=0) to exascale (t=1), IOR write MB/s",
		Header: []string{
			"t", "mem/core", "2ph write", "mc write", "improvement", "2ph paged",
		},
	}
	for _, pt := range points {
		base, mcio := pt.Results["two-phase"], pt.Results["memory-conscious"]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", pt.T),
			fmtBytes(pt.MemPerCore),
			fmt.Sprintf("%.1f", base.Bandwidth/1e6),
			fmt.Sprintf("%.1f", mcio.Bandwidth/1e6),
			fmt.Sprintf("%+.1f%%", (mcio.Bandwidth/base.Bandwidth-1)*100),
			fmt.Sprintf("%d", base.PagedAggregators),
		})
	}
	return t, nil
}

// TrajectoryBlame renders the same sweep through the critical-path
// analyzer: for each design point and strategy, the share of the run's
// simulated wall time attributed to each phase. Reading down a column
// shows the bottleneck migrating as memory per core shrinks — shuffle-
// dominated at t=0, paging-dominated for the baseline near t=1.
func TrajectoryBlame(scale int64, seed uint64) (*Table, error) {
	points, err := trajectoryRun(scale, seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "trajectory critical-path blame: share of simulated wall time per phase",
		Header: []string{"t", "strategy", "wall s"},
	}
	for _, phase := range analyze.Phases() {
		t.Header = append(t.Header, phase)
	}
	for _, pt := range points {
		for _, strategy := range []string{"two-phase", "memory-conscious"} {
			res := pt.Results[strategy]
			b := analyze.BlameFromTrace(res.Trace, pt.Overlap)
			row := []string{
				fmt.Sprintf("%.2f", pt.T),
				strategy,
				fmt.Sprintf("%.4f", res.Seconds),
			}
			for _, phase := range analyze.Phases() {
				share := 0.0
				if res.Seconds > 0 {
					share = b[phase] / res.Seconds * 100
				}
				row = append(row, fmt.Sprintf("%.1f%%", share))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
