package bench

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/stats"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

// Trajectory prices both strategies on machine design points interpolated
// along the paper's Table 1 trajectory from the 2010 petascale machine
// (t=0) to the projected 2018 exascale machine (t=1). The workload and
// node count are held fixed; only the per-node resource ratios change —
// memory per core shrinking ~120x along the way — so the sweep shows
// where on the road to exascale memory-conscious placement starts to
// matter.
func Trajectory(scale int64, seed uint64) (*Table, error) {
	const (
		nodes        = 16
		ranksPerNode = 12
		ranks        = nodes * ranksPerNode
	)
	t := &Table{
		Name: "table-1 trajectory: petascale (t=0) to exascale (t=1), IOR write MB/s",
		Header: []string{
			"t", "mem/core", "2ph write", "mc write", "improvement", "2ph paged",
		},
	}
	r := stats.NewRNG(seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	for _, tt := range []float64{0, 0.25, 0.5, 0.75, 1} {
		mc := machine.Interpolate(tt).Scaled(nodes)
		mc.NetLatency /= float64(scale)

		// The aggregation budget tracks the design point: a few cores'
		// worth of the node's memory, scaled like everything else.
		aggMem := 4 * mc.MemPerCore() / scale
		if aggMem < 1 {
			aggMem = 1
		}
		topo, err := mpi.BlockTopology(ranks, ranksPerNode)
		if err != nil {
			return nil, err
		}
		avail := make([]int64, nodes)
		for i := range avail {
			v := int64(float64(aggMem) * (1 + zs[i]))
			if v < aggMem/8 {
				v = aggMem / 8
			}
			if v > mc.MemPerNode {
				v = mc.MemPerNode
			}
			avail[i] = v
		}
		fsCfg := pfs.DefaultConfig(16)
		fsCfg.StripeUnit = maxI64(1, (1<<20)/scale)
		fsCfg.ReqOverhead /= float64(scale)
		fsCfg.TargetBW = mc.IOBandwidth / float64(fsCfg.Targets) / float64(mc.Nodes/nodes+1)

		params := collio.DefaultParams(aggMem)
		params.MsgInd = 4 * aggMem
		params.MsgGroup = 32 * aggMem
		ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail, FS: fsCfg, Params: params}

		w := workload.IOR{Ranks: ranks, BlockSize: 4 * aggMem, TransferSize: 4 * aggMem, Segments: 4}
		reqs, err := w.Requests()
		if err != nil {
			return nil, err
		}
		opt := sim.DefaultOptions()
		row := []string{fmt.Sprintf("%.2f", tt), fmtBytes(mc.MemPerCore())}
		var base, mcio float64
		var basePaged int
		for _, s := range []collio.Strategy{twophase.New(), core.New()} {
			plan, err := s.Plan(ctx, reqs)
			if err != nil {
				return nil, err
			}
			if err := plan.Validate(reqs); err != nil {
				return nil, err
			}
			res, err := collio.Cost(ctx, plan, reqs, collio.Write, opt)
			if err != nil {
				return nil, err
			}
			if s.Name() == "two-phase" {
				base = res.Bandwidth
				basePaged = res.PagedAggregators
			} else {
				mcio = res.Bandwidth
			}
		}
		row = append(row,
			fmt.Sprintf("%.1f", base/1e6),
			fmt.Sprintf("%.1f", mcio/1e6),
			fmt.Sprintf("%+.1f%%", (mcio/base-1)*100),
			fmt.Sprintf("%d", basePaged),
		)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
