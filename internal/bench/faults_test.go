package bench

import (
	"bytes"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/faults"
	"mcio/internal/obs"
	"mcio/internal/pfs"
	"mcio/internal/stats"
)

func TestFaultSweepShapeAndControlRow(t *testing.T) {
	tab, err := FaultSweep(testScale, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(faultRates())*2 {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(faultRates())*2)
	}
	// The rate-0 control rows must show zero overhead and zero recovery
	// work: the fault path is inert when nothing is injected.
	for _, row := range tab.Rows[:2] {
		if row[0] != "0" {
			t.Fatalf("first rows should be the rate-0 control, got rate %q", row[0])
		}
		if row[3] != "+0.0%" {
			t.Errorf("%s control overhead = %q, want +0.0%%", row[1], row[3])
		}
		for i, col := range []int{5, 6, 7, 8, 9} {
			if row[col] != "0" {
				t.Errorf("%s control column %d = %q, want 0", row[1], i, row[col])
			}
		}
	}
	// Higher fault rates must never report negative recovery time, and
	// injected events grow with the rate for at least one strategy.
	for _, row := range tab.Rows {
		if rec, _ := strconv.ParseFloat(row[4], 64); rec < 0 {
			t.Errorf("negative recovery seconds in row %v", row)
		}
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	a, err := FaultSweep(testScale, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(testScale, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different tables:\n%v\n%v", a.Rows, b.Rows)
	}
	c, err := FaultSweep(testScale, 12)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Rows, c.Rows) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestObserveFaultsExportsRecoveryTelemetry(t *testing.T) {
	res, err := ObserveFaults(testScale, 7, 16, collio.Write, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary == "" {
		t.Fatal("empty summary")
	}
	// The metrics snapshot must carry fault-injection counters.
	snap := res.Obs.Metrics.Snapshot()
	found := false
	for _, m := range snap {
		if m.Name == "faults.injected" || m.Name == "faults.failovers" || m.Name == "faults.stalls" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no fault counters in the observe snapshot")
	}
}

// End-to-end acceptance: a write-then-read IOR-style run under an
// injected node crash AND a transient OST fault still produces a file
// whose contents match the oracle — recovery moves responsibilities,
// never bytes.
func TestE2EWriteReadUnderNodeAndOSTFaults(t *testing.T) {
	cfg := Fig7Config(testScale, 3)
	cfg.MemMB = []int{16}
	wl, _ := Fig7Workload(cfg)
	reqs, err := wl.Requests()
	if err != nil {
		t.Fatal(err)
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(16*MB), zs, wl.TotalBytes())
	if err != nil {
		t.Fatal(err)
	}

	plan, state, err := core.New().PlanWithState(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(reqs); err != nil {
		t.Fatal(err)
	}

	// Mid-operation, the first aggregator's node crashes: the failover
	// handler remerges its domains and the rewritten plan executes.
	victim := plan.Domains[0].AggNode
	handler := &core.Failover{State: state, Detect: 0.01}
	var affected []int
	for i, d := range plan.Domains {
		if d.Bytes > 0 && d.AggNode == victim {
			affected = append(affected, i)
		}
	}
	ras, err := handler.OnHostFault(ctx, collio.HostFault{Node: victim, Kind: faults.NodeCrash},
		plan.Domains, affected)
	if err != nil {
		t.Fatal(err)
	}
	if err := collio.ApplyReassignments(plan.Domains, ras); err != nil {
		t.Fatal(err)
	}
	recovered := plan.Compact()
	if err := recovered.Validate(reqs); err != nil {
		t.Fatalf("recovered plan invalid: %v", err)
	}
	for _, d := range recovered.Domains {
		if d.AggNode == victim {
			t.Fatalf("recovered plan still aggregates on crashed node %d", victim)
		}
	}

	// The file system additionally throws transient errors on OST 0 for
	// its first accesses; the retry ladder must absorb them.
	fsys, err := pfs.NewFileSystem(ctx.FS)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	fsys.SetObserver(o)
	var remaining atomic.Int64
	remaining.Store(3) // < MaxRetries: the first access rides out the window
	fsys.SetFaults(func(target int, write bool) error {
		if target == 0 && remaining.Add(-1) >= 0 {
			return errTransient
		}
		return nil
	}, pfs.RetryPolicy{MaxRetries: 5, BackoffSeconds: 0.001})
	file := fsys.Open("e2e-faults")

	writeData := make([]collio.RankData, ctx.Topo.Size())
	var oracleSize int64
	for rk := range writeData {
		var req collio.RankRequest
		req.Rank = rk
		for _, q := range reqs {
			if q.Rank == rk {
				req = q
			}
		}
		buf := make([]byte, req.Bytes())
		for i := range buf {
			buf[i] = byte((rk*131 + i*7 + 3) % 251)
		}
		writeData[rk] = collio.RankData{Req: req, Buf: buf}
		for _, e := range pfs.NormalizeExtents(req.Extents) {
			if e.End() > oracleSize {
				oracleSize = e.End()
			}
		}
	}
	if err := collio.Exec(ctx, recovered, writeData, file, collio.Write); err != nil {
		t.Fatalf("faulted write exec: %v", err)
	}
	if fsys.Retries() == 0 {
		t.Fatal("transient OST fault never exercised the retry ladder")
	}

	oracle := make([]byte, oracleSize)
	for rk := range writeData {
		exts := pfs.NormalizeExtents(writeData[rk].Req.Extents)
		var pos int64
		for _, e := range exts {
			copy(oracle[e.Offset:e.End()], writeData[rk].Buf[pos:pos+e.Length])
			pos += e.Length
		}
	}
	got := make([]byte, oracleSize)
	if _, err := file.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, oracle) {
		t.Fatal("file contents differ from oracle after faulted write")
	}

	// Collective read back through the recovered plan round-trips.
	readData := make([]collio.RankData, ctx.Topo.Size())
	for rk := range readData {
		readData[rk] = collio.RankData{
			Req: writeData[rk].Req,
			Buf: make([]byte, len(writeData[rk].Buf)),
		}
	}
	if err := collio.Exec(ctx, recovered, readData, file, collio.Read); err != nil {
		t.Fatalf("faulted read exec: %v", err)
	}
	for rk := range readData {
		if !bytes.Equal(readData[rk].Buf, writeData[rk].Buf) {
			t.Fatalf("rank %d read back different data", rk)
		}
	}
	if v := o.Counter("pfs.retries", obs.L("ost", "0")).Value(); v == 0 {
		t.Fatal("pfs.retries{ost=0} counter not exported")
	}
}

// A zero fault rate leaves the ObserveFaults run identical in elapsed
// time and bandwidth to the clean Observe path for the same workload.
func TestObserveFaultsZeroRateMatchesClean(t *testing.T) {
	faulted, err := ObserveFaults(testScale, 9, 16, collio.Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Summary == "" {
		t.Fatal("empty summary")
	}
	// No recovery of any kind may appear at rate 0.
	snap := faulted.Obs.Metrics.Snapshot()
	for _, m := range snap {
		switch m.Name {
		case "faults.injected", "faults.failovers", "faults.stalls", "sim.recovery_rounds":
			t.Fatalf("metric %s present in a zero-rate run", m.Name)
		}
	}
}

var errTransient = errorString("EIO: injected transient")

type errorString string

func (e errorString) Error() string { return string(e) }
