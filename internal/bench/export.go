package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// seriesJSON is the stable export schema for a figure sweep.
type seriesJSON struct {
	Name     string      `json:"name"`
	Workload string      `json:"workload"`
	Scale    int64       `json:"scale"`
	Seed     uint64      `json:"seed"`
	SigmaMB  float64     `json:"sigma_mb"`
	Points   []pointJSON `json:"points"`
	Summary  summaryJSON `json:"summary"`
}

type pointJSON struct {
	MemMB    int     `json:"mem_mb"`
	Strategy string  `json:"strategy"`
	Op       string  `json:"op"`
	MBps     float64 `json:"mbps"`
	Groups   int     `json:"groups"`
	Domains  int     `json:"domains"`
	Aggs     int     `json:"aggregators"`
	Paged    int     `json:"paged_aggregators"`
	Rounds   int     `json:"rounds"`
	Seconds  float64 `json:"seconds"`
}

type summaryJSON struct {
	WriteImprovement float64 `json:"write_improvement"`
	ReadImprovement  float64 `json:"read_improvement"`
}

// WriteJSON serializes the series for external plotting tools.
func (s *Series) WriteJSON(w io.Writer) error {
	out := seriesJSON{
		Name:     s.Name,
		Workload: s.Workload,
		Scale:    s.Config.Scale,
		Seed:     s.Config.Seed,
		SigmaMB:  s.Config.SigmaMB,
		Summary: summaryJSON{
			WriteImprovement: s.Improvement("write"),
			ReadImprovement:  s.Improvement("read"),
		},
	}
	for _, p := range s.Points {
		pj := pointJSON{
			MemMB:    p.MemMB,
			Strategy: p.Strategy,
			Op:       p.Op,
			MBps:     p.MBps,
		}
		if r := p.Result; r != nil {
			pj.Groups = r.Groups
			pj.Domains = r.Domains
			pj.Aggs = r.Aggregators
			pj.Paged = r.PagedAggregators
			pj.Rounds = r.MaxRounds
			pj.Seconds = r.Seconds
		}
		out.Points = append(out.Points, pj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveJSON writes the series to a file.
func (s *Series) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	defer f.Close()
	if err := s.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// tableJSON is the stable export schema for ablation-style tables.
type tableJSON struct {
	Name   string     `json:"name"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// WriteJSON serializes the table.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tableJSON{Name: t.Name, Header: t.Header, Rows: t.Rows})
}
