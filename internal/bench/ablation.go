package bench

import (
	"fmt"
	"strings"
)

// Table is a small rendered result for ablation experiments.
type Table struct {
	Name   string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Name)
	for i, h := range t.Header {
		fmt.Fprintf(&b, "%-*s  ", width[i], h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", width[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ablationPoints is the reduced memory sweep ablations run on: one scarce,
// one mid, one comfortable point.
func ablationPoints() []int { return []int{4, 16, 64} }

// AblationGrouping isolates §3.1's aggregation-group division: the full
// memory-conscious strategy versus a variant whose Msg_group spans the
// whole file (a single global group, so only dynamic placement and the
// partition tree remain).
func AblationGrouping(scale int64, seed uint64) (*Table, error) {
	base := Fig7Config(scale, seed)
	base.MemMB = ablationPoints()
	wl, _ := Fig7Workload(base)

	grouped, err := RunSweep(base, wl, "ior")
	if err != nil {
		return nil, err
	}
	single := base
	single.Name = "fig7-single-group"
	single.MsgGroupFactor = 1 << 20 // one group spanning everything
	ungrouped, err := RunSweep(single, wl, "ior")
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name:   "ablation: aggregation-group division (IOR, 120 ranks, write MB/s)",
		Header: []string{"mem", "mc grouped", "mc single-group", "delta"},
	}
	for _, m := range base.MemMB {
		g := grouped.find(m, "memory-conscious", "write")
		u := ungrouped.find(m, "memory-conscious", "write")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d MB", m),
			fmt.Sprintf("%.1f", g.MBps),
			fmt.Sprintf("%.1f", u.MBps),
			fmt.Sprintf("%+.1f%%", (g.MBps/u.MBps-1)*100),
		})
	}
	return t, nil
}

// AblationNah sweeps the per-host aggregator limit N_ah, showing the
// trade-off the paper's Nah parameter controls: too few aggregators leave
// bandwidth idle, too many contend for a node's memory and NIC.
func AblationNah(scale int64, seed uint64) (*Table, error) {
	t := &Table{
		Name:   "ablation: per-host aggregator limit N_ah (IOR, 120 ranks, 16 MB, write MB/s)",
		Header: []string{"N_ah", "mc write", "mc read", "aggregators"},
	}
	for _, nah := range []int{1, 2, 4, 8} {
		cfg := Fig7Config(scale, seed)
		cfg.Name = fmt.Sprintf("fig7-nah-%d", nah)
		cfg.MemMB = []int{16}
		cfg.Nah = nah
		wl, _ := Fig7Workload(cfg)
		s, err := RunSweep(cfg, wl, "ior")
		if err != nil {
			return nil, err
		}
		w := s.find(16, "memory-conscious", "write")
		r := s.find(16, "memory-conscious", "read")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nah),
			fmt.Sprintf("%.1f", w.MBps),
			fmt.Sprintf("%.1f", r.MBps),
			fmt.Sprintf("%d", w.Result.Aggregators),
		})
	}
	return t, nil
}

// AblationSigma sweeps the availability variance σ: the paper's core
// claim is that the memory-conscious strategy's advantage grows with the
// node-to-node memory variance it was designed for.
func AblationSigma(scale int64, seed uint64) (*Table, error) {
	t := &Table{
		Name:   "ablation: availability variance sigma (IOR, 120 ranks, 16 MB)",
		Header: []string{"sigma", "2ph write", "mc write", "improvement"},
	}
	for _, sigma := range []float64{0, 10, 50, 100} {
		cfg := Fig7Config(scale, seed)
		cfg.Name = fmt.Sprintf("fig7-sigma-%g", sigma)
		cfg.MemMB = []int{16}
		cfg.SigmaMB = sigma
		wl, _ := Fig7Workload(cfg)
		s, err := RunSweep(cfg, wl, "ior")
		if err != nil {
			return nil, err
		}
		base := s.find(16, "two-phase", "write")
		mc := s.find(16, "memory-conscious", "write")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g MB", sigma),
			fmt.Sprintf("%.1f", base.MBps),
			fmt.Sprintf("%.1f", mc.MBps),
			fmt.Sprintf("%+.1f%%", (mc.MBps/base.MBps-1)*100),
		})
	}
	return t, nil
}

// AblationOverlap prices both strategies with and without pipelining of
// the shuffle and I/O phases — a forward-looking variant the paper's
// two-phase baseline lacks.
func AblationOverlap(scale int64, seed uint64) (*Table, error) {
	t := &Table{
		Name:   "ablation: phase overlap (IOR, 120 ranks, 16 MB, write MB/s)",
		Header: []string{"strategy", "blocking", "overlapped", "speedup"},
	}
	run := func(overlap bool) (*Series, error) {
		cfg := Fig7Config(scale, seed)
		cfg.Name = fmt.Sprintf("fig7-overlap-%v", overlap)
		cfg.MemMB = []int{16}
		cfg.Overlap = overlap
		wl, _ := Fig7Workload(cfg)
		return RunSweep(cfg, wl, "ior")
	}
	blocking, err := run(false)
	if err != nil {
		return nil, err
	}
	overlapped, err := run(true)
	if err != nil {
		return nil, err
	}
	for _, strategy := range []string{"two-phase", "memory-conscious"} {
		b := blocking.find(16, strategy, "write")
		o := overlapped.find(16, strategy, "write")
		t.Rows = append(t.Rows, []string{
			strategy,
			fmt.Sprintf("%.1f", b.MBps),
			fmt.Sprintf("%.1f", o.MBps),
			fmt.Sprintf("%.2fx", o.MBps/b.MBps),
		})
	}
	return t, nil
}

// AblationAggsPerNode compares the classic baseline against variants with
// more (statically chosen) aggregators per node — showing that the
// memory-conscious win is not just "use more aggregators".
func AblationAggsPerNode(scale int64, seed uint64) (*Table, error) {
	t := &Table{
		Name:   "ablation: static aggregators per node vs dynamic placement (IOR, 120 ranks, 16 MB, write MB/s)",
		Header: []string{"strategy", "write MB/s", "paged aggs"},
	}
	cfg := Fig7Config(scale, seed)
	cfg.MemMB = []int{16}
	wl, _ := Fig7Workload(cfg)
	s, err := RunSweep(cfg, wl, "ior")
	if err != nil {
		return nil, err
	}
	for _, strategy := range []string{"two-phase", "memory-conscious"} {
		p := s.find(16, strategy, "write")
		t.Rows = append(t.Rows, []string{
			strategy,
			fmt.Sprintf("%.1f", p.MBps),
			fmt.Sprintf("%d", p.Result.PagedAggregators),
		})
	}
	for _, k := range []int{2, 4} {
		sk, err := RunSweepWithBaselineAggs(cfg, wl, k)
		if err != nil {
			return nil, err
		}
		p := sk.find(16, "two-phase", "write")
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("two-phase %d/node", k),
			fmt.Sprintf("%.1f", p.MBps),
			fmt.Sprintf("%d", p.Result.PagedAggregators),
		})
	}
	return t, nil
}
