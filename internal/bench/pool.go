package bench

import (
	"runtime"
	"sync"
)

// The sweep engine's worker budget. Every experiment decomposes into
// independent, deterministic cells — (memory point × strategy) for the
// figure sweeps, (rate × strategy) for the resilience sweep, one design
// point for the trajectory — and ForEach fans them out across at most
// Parallelism() goroutines. Cells are pure plan+cost simulations, so the
// schedule cannot change any result: outputs land in per-cell slots and
// are rendered in index order, byte-identical to the serial run.
var pool = struct {
	sync.Mutex
	n   int
	sem chan struct{} // n-1 tokens: the caller's goroutine is the n-th worker
}{}

func init() { SetParallelism(0) }

// SetParallelism fixes the worker budget for subsequent ForEach calls:
// n = 1 runs every cell inline on the caller's goroutine (the exact
// legacy serial path), n < 1 resets to the default runtime.GOMAXPROCS(0).
// It must not be called concurrently with a running sweep.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	pool.Lock()
	defer pool.Unlock()
	pool.n = n
	pool.sem = make(chan struct{}, n-1)
}

// Parallelism returns the current worker budget.
func Parallelism() int {
	pool.Lock()
	defer pool.Unlock()
	return pool.n
}

// ForEach runs fn(0) … fn(n-1), fanning the calls across at most
// Parallelism() concurrent goroutines. The token budget is global, so
// nested ForEach calls (an experiment fanning out sweeps that fan out
// cells) share one bound and can never deadlock: an item that cannot get
// a token simply runs inline on the goroutine that wanted to spawn it.
//
// With a budget of one, items run sequentially on the caller's goroutine
// and ForEach stops at the first error. With a larger budget every item
// runs (items are independent), and the returned error is the
// lowest-indexed one — the same error the serial path reports, since
// items are scheduled in index order.
func ForEach(n int, fn func(int) error) error {
	pool.Lock()
	p, sem := pool.n, pool.sem
	pool.Unlock()
	if p <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = fn(i)
			}(i)
		default:
			errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
