package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/obs"
)

// TestObserveFig7 is the acceptance test of the observability PR: one
// instrumented fig7 run must yield a valid Chrome trace on simulated
// time and a metrics snapshot carrying per-rank MPI byte counters,
// per-OST PFS counters, and per-node paging events for both strategies.
func TestObserveFig7(t *testing.T) {
	res, err := Observe("fig7", testScale, 42, 16, collio.Write)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary, "two-phase") || !strings.Contains(res.Summary, "memory-conscious") {
		t.Fatalf("summary misses a strategy:\n%s", res.Summary)
	}
	if !strings.Contains(res.Summary, "bound by") {
		t.Fatalf("summary misses the binding tally:\n%s", res.Summary)
	}

	// Metrics snapshot: the required families, each present for both
	// strategies.
	type fam struct {
		perRank, perOST, perNode bool
	}
	want := map[string]fam{
		"mpi.bytes_sent":         {perRank: true},
		"mpi.msgs_sent":          {perRank: true},
		"pfs.bytes_written":      {perOST: true},
		"pfs.requests":           {perOST: true},
		"memmodel.paging_events": {perNode: true},
	}
	seen := map[string]map[string]bool{} // family -> strategies seen
	for _, p := range res.Obs.Metrics.Snapshot() {
		f, ok := want[p.Name]
		if !ok {
			continue
		}
		if f.perRank && p.Labels["rank"] == "" {
			t.Errorf("%s{%v} misses rank label", p.Name, p.Labels)
		}
		if f.perOST && p.Labels["ost"] == "" {
			t.Errorf("%s{%v} misses ost label", p.Name, p.Labels)
		}
		if f.perNode && p.Labels["node"] == "" {
			t.Errorf("%s{%v} misses node label", p.Name, p.Labels)
		}
		if seen[p.Name] == nil {
			seen[p.Name] = map[string]bool{}
		}
		seen[p.Name][p.Labels["strategy"]] = true
	}
	for name := range want {
		for _, strat := range []string{"two-phase", "memory-conscious"} {
			if !seen[name][strat] {
				t.Errorf("metric %s missing for strategy %s", name, strat)
			}
		}
	}

	// Trace export: valid JSON, two strategy processes, monotonic ts.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, res.Obs.Trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			PID  int            `json:"pid"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	procs := map[string]bool{}
	lastTs := -1.0
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Args["name"].(string)] = true
		}
		if e.Ph == "X" {
			if e.Ts < lastTs {
				t.Fatalf("trace ts not monotonic: %v after %v", e.Ts, lastTs)
			}
			lastTs = e.Ts
		}
	}
	if !procs["two-phase"] || !procs["memory-conscious"] {
		t.Fatalf("trace processes = %v, want both strategies", procs)
	}
}

func TestObserveRejectsUnknownFigure(t *testing.T) {
	if _, err := Observe("fig9", testScale, 42, 16, collio.Write); err == nil {
		t.Fatal("unknown figure accepted")
	}
}
