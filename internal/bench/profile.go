package bench

import (
	"fmt"
	"strings"

	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/obs/timeline"
	"mcio/internal/sim"
	"mcio/internal/stats"
)

// ProfileExperiments lists every `mcio profile` experiment, in display
// order — the single source of truth for the subcommand's usage text
// and its unknown-experiment error.
var ProfileExperiments = []string{"fig6", "fig7", "fig8", "gray"}

// ProfileResult is one time-resolved profiling run: the recorder
// holding every utilization series and journal event, the saturation
// analysis over it, and a text summary.
type ProfileResult struct {
	Rec     *timeline.Recorder
	Sat     *timeline.SatReport
	Summary string
}

// Profile runs one experiment with a timeline recorder attached and
// analyzes the result. The figure experiments (fig6, fig7, fig8) price
// the memory-conscious strategy on the figure's workload — one clean
// run, profiled down to per-OST, per-NIC and per-node utilization.
// "gray" runs the pinned gray-failure duel instead: the recorder
// rides the adaptive run, so the report shows the OSTSlowdown onset,
// the suspicion crossing and the breaker reaction on one timeline.
//
// tick is the initial sample tick in simulated seconds (0 picks the
// recorder default); memMB as in Observe. Deterministic: the same
// arguments always produce a byte-identical recorder, so reports
// built from it diff clean across reruns.
func Profile(name string, scale int64, seed uint64, memMB int, op collio.Op, tick float64) (*ProfileResult, error) {
	rec := timeline.NewRecorder(tick, 0)
	var summary strings.Builder
	switch name {
	case "fig6", "fig7", "fig8":
		if err := profileFigure(rec, name, scale, seed, memMB, op, &summary); err != nil {
			return nil, err
		}
	case "gray":
		if err := profileGray(rec, &summary); err != nil {
			return nil, err
		}
	default:
		return nil, cliutil.UnknownChoice("experiment", name, ProfileExperiments)
	}
	sat := timeline.Analyze(rec, timeline.SatOptions{})
	summary.WriteString(sat.Render())
	lags := timeline.DetectionLags(rec.J().Events())
	for _, l := range lags {
		fmt.Fprintf(&summary, "detection lag %s: onset %.4gs", l.Entity, l.Onset)
		if s := l.OnsetToSuspect(); s >= 0 {
			fmt.Fprintf(&summary, ", suspect +%.4gs", s)
		}
		if r := l.OnsetToReact(); r >= 0 {
			fmt.Fprintf(&summary, ", reaction +%.4gs", r)
		}
		summary.WriteString("\n")
	}
	return &ProfileResult{Rec: rec, Sat: sat, Summary: summary.String()}, nil
}

// profileFigure prices the memory-conscious strategy on one figure
// workload with the recorder attached. Only one strategy runs: a
// timeline is a per-run artifact, and the memory-conscious run is the
// one whose saturation behavior the paper's placement reasons about.
func profileFigure(rec *timeline.Recorder, figure string, scale int64, seed uint64,
	memMB int, op collio.Op, summary *strings.Builder) error {
	if memMB <= 0 {
		memMB = 16
	}
	var (
		cfg  Config
		wl   Workload
		name string
		err  error
	)
	switch figure {
	case "fig6":
		cfg = Fig6Config(scale, seed)
		wl, name, err = Fig6Workload(cfg)
		if err != nil {
			return err
		}
	case "fig7":
		cfg = Fig7Config(scale, seed)
		wl, name = Fig7Workload(cfg)
	default:
		cfg = Fig8Config(scale, seed)
		wl, name = Fig8Workload(cfg)
	}
	cfg.MemMB = []int{memMB}
	reqs, err := wl.Requests()
	if err != nil {
		return err
	}
	nodes := (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	r := stats.NewRNG(cfg.Seed)
	zs := make([]float64, nodes)
	for i := range zs {
		zs[i] = r.Normal(0, 1)
	}
	ctx, err := cfg.context(cfg.scaled(int64(memMB)*MB), zs, wl.TotalBytes())
	if err != nil {
		return err
	}
	ctx.Timeline = rec
	opt := sim.DefaultOptions()
	opt.Overlap = cfg.Overlap

	s := core.New()
	plan, err := s.Plan(ctx, reqs)
	if err != nil {
		return err
	}
	res, err := collio.Cost(ctx, plan, reqs, op, opt)
	if err != nil {
		return err
	}
	fmt.Fprintf(summary, "profile %s: %s, %s, %d MB per aggregator\n", figure, name, op, memMB)
	fmt.Fprintf(summary, "%s: %d domains, %.4fs simulated (%.1f MB/s)\n",
		s.Name(), len(plan.Domains), res.Seconds,
		float64(wl.TotalBytes())/res.Seconds/1e6)
	return nil
}

// profileGray runs the pinned gray-failure duel with the recorder on
// the adaptive run. Duel violations surface in the summary rather than
// as errors — a profile of a failing duel is more useful than no
// profile.
func profileGray(rec *timeline.Recorder, summary *strings.Builder) error {
	rep := &GrayReport{}
	fail := func(op int, format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}
	if err := grayDuel(rep, fail, rec); err != nil {
		return err
	}
	rec.SetMeta("experiment", "gray-duel")
	fmt.Fprintf(summary, "profile gray: pinned duel, static %.4fs vs adaptive %.4fs\n",
		rep.DuelStaticSeconds, rep.DuelAdaptiveSeconds)
	fmt.Fprintf(summary, "duel detection lag: onset->suspect %.4fs, onset->reaction %.4fs\n",
		rep.DuelOnsetToSuspectSeconds, rep.DuelOnsetToReactionSeconds)
	for _, v := range rep.Violations {
		fmt.Fprintf(summary, "violation: %s\n", v)
	}
	return nil
}
