// Package mpiio is the MPI-IO-style access layer of the simulator: files
// with per-rank file views, independent read/write (with optional data
// sieving), and the collective read/write entry points that dispatch to a
// pluggable collective I/O strategy — the role ROMIO's ADIO layer plays
// between the MPI-IO interface and the file system.
package mpiio

import (
	"fmt"

	"mcio/internal/collio"
	"mcio/internal/datatype"
	"mcio/internal/pfs"
	"mcio/internal/sim"
)

// File is an open file handle shared by all ranks of the context's
// topology. Like an MPI file handle, it carries one file view per rank.
type File struct {
	ctx      *collio.Context
	strategy collio.Strategy
	file     *pfs.File
	views    []datatype.View
	opt      sim.Options
}

// Open opens (creating if needed) name on fsys for collective access under
// ctx with the given strategy. All ranks start with the default
// byte-stream view.
func Open(fsys *pfs.FileSystem, name string, ctx *collio.Context, strategy collio.Strategy) (*File, error) {
	if err := ctx.Validate(); err != nil {
		return nil, err
	}
	if strategy == nil {
		return nil, fmt.Errorf("mpiio: nil strategy")
	}
	if got, want := fsys.Config().Targets, ctx.FS.Targets; got != want {
		return nil, fmt.Errorf("mpiio: context expects %d targets, file system has %d", want, got)
	}
	views := make([]datatype.View, ctx.Topo.Size())
	for i := range views {
		views[i] = datatype.ContigView()
	}
	return &File{
		ctx:      ctx,
		strategy: strategy,
		file:     fsys.Open(name),
		views:    views,
		opt:      sim.DefaultOptions(),
	}, nil
}

// Name returns the underlying file's name.
func (f *File) Name() string { return f.file.Name() }

// SetOptions replaces the cost-engine options used for pricing collective
// calls (phase overlap, contention model).
func (f *File) SetOptions(opt sim.Options) error {
	if err := opt.Validate(); err != nil {
		return err
	}
	f.opt = opt
	return nil
}

// SetView installs rank's file view, like MPI_File_set_view. Filetypes
// must have monotonically increasing displacements (an MPI requirement
// this implementation relies on: a rank's linear data stream maps to
// file offsets in increasing order).
func (f *File) SetView(rank int, v datatype.View) error {
	if rank < 0 || rank >= len(f.views) {
		return fmt.Errorf("mpiio: SetView for invalid rank %d", rank)
	}
	if v.Filetype == nil || v.Filetype.Size() <= 0 {
		return fmt.Errorf("mpiio: view filetype must have data bytes")
	}
	if v.Disp < 0 {
		return fmt.Errorf("mpiio: negative view displacement %d", v.Disp)
	}
	f.views[rank] = v
	return nil
}

// SetViewAll installs the same view on every rank.
func (f *File) SetViewAll(v datatype.View) error {
	for r := range f.views {
		if err := f.SetView(r, v); err != nil {
			return err
		}
	}
	return nil
}

// CollArgs is one rank's participation in a collective call: Buf bytes at
// data-space offset DataOff under the rank's view. A nil Buf means the
// rank participates with no data (collective calls are still collective).
type CollArgs struct {
	DataOff int64
	Buf     []byte
}

// requests resolves each rank's CollArgs through its view.
func (f *File) requests(args []CollArgs) ([]collio.RankRequest, []collio.RankData, error) {
	if len(args) != len(f.views) {
		return nil, nil, fmt.Errorf("mpiio: collective call with %d args for %d ranks",
			len(args), len(f.views))
	}
	reqs := make([]collio.RankRequest, len(args))
	data := make([]collio.RankData, len(args))
	for r, a := range args {
		reqs[r].Rank = r
		if len(a.Buf) > 0 {
			reqs[r].Extents = f.views[r].Extents(a.DataOff, int64(len(a.Buf)))
		}
		data[r] = collio.RankData{Req: reqs[r], Buf: a.Buf}
	}
	return reqs, data, nil
}

// WriteAll performs a collective write: every rank contributes its args
// entry. It really moves the bytes onto the striped file system and also
// prices the operation on the machine model, returning the cost result.
func (f *File) WriteAll(args []CollArgs) (*collio.CostResult, error) {
	return f.collective(args, collio.Write)
}

// ReadAll performs a collective read into each rank's buffer and prices
// the operation.
func (f *File) ReadAll(args []CollArgs) (*collio.CostResult, error) {
	return f.collective(args, collio.Read)
}

func (f *File) collective(args []CollArgs, op collio.Op) (*collio.CostResult, error) {
	reqs, data, err := f.requests(args)
	if err != nil {
		return nil, err
	}
	plan, err := f.strategy.Plan(f.ctx, reqs)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(reqs); err != nil {
		return nil, err
	}
	if err := collio.Exec(f.ctx, plan, data, f.file, op); err != nil {
		return nil, err
	}
	return collio.Cost(f.ctx, plan, reqs, op, f.opt)
}

// PlanOnly plans and prices a collective operation without moving bytes —
// the benchmark harness uses this to run the paper's full-size experiments.
func (f *File) PlanOnly(reqs []collio.RankRequest, op collio.Op) (*collio.CostResult, error) {
	plan, err := f.strategy.Plan(f.ctx, reqs)
	if err != nil {
		return nil, err
	}
	if err := plan.Validate(reqs); err != nil {
		return nil, err
	}
	return collio.Cost(f.ctx, plan, reqs, op, f.opt)
}

// WriteAtRank performs independent (non-collective) I/O for one rank
// through its view: each resolved extent becomes one file write, exactly
// the many-small-requests behaviour collective I/O exists to avoid.
func (f *File) WriteAtRank(rank int, dataOff int64, buf []byte) error {
	exts, err := f.resolve(rank, dataOff, buf)
	if err != nil {
		return err
	}
	var pos int64
	for _, e := range exts {
		if _, err := f.file.WriteAt(buf[pos:pos+e.Length], e.Offset); err != nil {
			return err
		}
		pos += e.Length
	}
	return nil
}

// ReadAtRank performs an independent read for one rank through its view.
func (f *File) ReadAtRank(rank int, dataOff int64, buf []byte) error {
	exts, err := f.resolve(rank, dataOff, buf)
	if err != nil {
		return err
	}
	var pos int64
	for _, e := range exts {
		if _, err := f.file.ReadAt(buf[pos:pos+e.Length], e.Offset); err != nil {
			return err
		}
		pos += e.Length
	}
	return nil
}

// SieveReadAtRank performs an independent read with data sieving: one
// large contiguous read covering the whole access span, from which the
// requested pieces are extracted — ROMIO's optimization for noncontiguous
// independent reads.
func (f *File) SieveReadAtRank(rank int, dataOff int64, buf []byte) error {
	exts, err := f.resolve(rank, dataOff, buf)
	if err != nil {
		return err
	}
	if len(exts) == 0 {
		return nil
	}
	span := pfs.Span(exts)
	sieve := make([]byte, span.Length)
	if _, err := f.file.ReadAt(sieve, span.Offset); err != nil {
		return err
	}
	var pos int64
	for _, e := range exts {
		copy(buf[pos:pos+e.Length], sieve[e.Offset-span.Offset:e.End()-span.Offset])
		pos += e.Length
	}
	return nil
}

// SieveWriteAtRank performs an independent write with data sieving:
// read-modify-write of the covering span. Like ROMIO, it is only safe when
// concurrent writers do not touch the same span.
func (f *File) SieveWriteAtRank(rank int, dataOff int64, buf []byte) error {
	exts, err := f.resolve(rank, dataOff, buf)
	if err != nil {
		return err
	}
	if len(exts) == 0 {
		return nil
	}
	span := pfs.Span(exts)
	sieve := make([]byte, span.Length)
	if _, err := f.file.ReadAt(sieve, span.Offset); err != nil {
		return err
	}
	var pos int64
	for _, e := range exts {
		copy(sieve[e.Offset-span.Offset:e.End()-span.Offset], buf[pos:pos+e.Length])
		pos += e.Length
	}
	_, err = f.file.WriteAt(sieve, span.Offset)
	return err
}

func (f *File) resolve(rank int, dataOff int64, buf []byte) ([]pfs.Extent, error) {
	if rank < 0 || rank >= len(f.views) {
		return nil, fmt.Errorf("mpiio: invalid rank %d", rank)
	}
	if dataOff < 0 {
		return nil, fmt.Errorf("mpiio: negative data offset %d", dataOff)
	}
	if len(buf) == 0 {
		return nil, nil
	}
	return f.views[rank].Extents(dataOff, int64(len(buf))), nil
}

// Size returns the file's current size.
func (f *File) Size() int64 { return f.file.Size() }
