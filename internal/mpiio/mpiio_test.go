package mpiio

import (
	"bytes"
	"testing"

	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/datatype"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
)

func testSetup(t *testing.T, ranks, perNode int) (*collio.Context, *pfs.FileSystem) {
	t.Helper()
	topo, err := mpi.BlockTopology(ranks, perNode)
	if err != nil {
		t.Fatal(err)
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	avail := make([]int64, topo.Nodes())
	for i := range avail {
		avail[i] = mc.MemPerNode
	}
	fsCfg := pfs.DefaultConfig(4)
	fsCfg.StripeUnit = 64
	params := collio.DefaultParams(128)
	params.MemMin = 16
	ctx := &collio.Context{Topo: topo, Machine: mc, Avail: avail, FS: fsCfg, Params: params}
	fsys, err := pfs.NewFileSystem(fsCfg)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, fsys
}

func TestOpenValidation(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	if _, err := Open(fsys, "f", ctx, nil); err == nil {
		t.Fatal("nil strategy accepted")
	}
	otherFS, _ := pfs.NewFileSystem(pfs.DefaultConfig(9))
	if _, err := Open(otherFS, "f", ctx, twophase.New()); err == nil {
		t.Fatal("mismatched file system accepted")
	}
	if _, err := Open(fsys, "f", ctx, twophase.New()); err != nil {
		t.Fatal(err)
	}
}

func TestSetViewValidation(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "f", ctx, twophase.New())
	if err := f.SetView(-1, datatype.ContigView()); err == nil {
		t.Fatal("bad rank accepted")
	}
	if err := f.SetView(0, datatype.View{Filetype: datatype.Contiguous{}}); err == nil {
		t.Fatal("empty filetype accepted")
	}
	if err := f.SetView(0, datatype.View{Disp: -1, Filetype: datatype.Contiguous{Bytes: 1}}); err == nil {
		t.Fatal("negative displacement accepted")
	}
	if err := f.SetViewAll(datatype.View{Disp: 8, Filetype: datatype.Contiguous{Bytes: 4}}); err != nil {
		t.Fatal(err)
	}
}

func TestSetOptions(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "f", ctx, twophase.New())
	opt := sim.DefaultOptions()
	opt.Overlap = true
	if err := f.SetOptions(opt); err != nil {
		t.Fatal(err)
	}
	opt.MemCopyFactor = 0
	if err := f.SetOptions(opt); err == nil {
		t.Fatal("bad options accepted")
	}
}

// Collective write/read through strided views, both strategies.
func TestCollectiveThroughViews(t *testing.T) {
	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		ctx, fsys := testSetup(t, 6, 2)
		f, err := Open(fsys, "viewfile", ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		// Layout: rank r owns bytes [r*40, r*40+40) via its displacement.
		for r := 0; r < 6; r++ {
			if err := f.SetView(r, datatype.View{Disp: int64(r) * 40, Filetype: datatype.Contiguous{Bytes: 1}}); err != nil {
				t.Fatal(err)
			}
		}
		args := make([]CollArgs, 6)
		for r := range args {
			buf := make([]byte, 40)
			for i := range buf {
				buf[i] = byte(r*40 + i)
			}
			args[r] = CollArgs{Buf: buf}
		}
		res, err := f.WriteAll(args)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.UserBytes != 240 || res.Bandwidth <= 0 {
			t.Fatalf("%s: cost result %+v", s.Name(), res)
		}
		// Verify raw file contents straight off the striped store.
		got := make([]byte, 240)
		raw := fsys.Open("viewfile")
		if _, err := raw.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != byte(i) {
				t.Fatalf("%s: byte %d = %d", s.Name(), i, got[i])
			}
		}
		// Collective read back.
		rargs := make([]CollArgs, 6)
		for r := range rargs {
			rargs[r] = CollArgs{Buf: make([]byte, 40)}
		}
		if _, err := f.ReadAll(rargs); err != nil {
			t.Fatal(err)
		}
		for r := range rargs {
			if !bytes.Equal(rargs[r].Buf, args[r].Buf) {
				t.Fatalf("%s: rank %d read mismatch", s.Name(), r)
			}
		}
	}
}

func TestCollectiveArgCountMismatch(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "f", ctx, twophase.New())
	if _, err := f.WriteAll(make([]CollArgs, 2)); err == nil {
		t.Fatal("short args accepted")
	}
}

func TestIndependentIO(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "ind", ctx, twophase.New())
	data := []byte("independent path")
	if err := f.WriteAtRank(1, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadAtRank(2, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("independent read = %q", got)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
	if err := f.WriteAtRank(9, 0, data); err == nil {
		t.Fatal("invalid rank accepted")
	}
	if err := f.ReadAtRank(0, -1, got); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := f.WriteAtRank(0, 0, nil); err != nil {
		t.Fatal("empty write should be a no-op")
	}
}

func TestIndependentThroughStridedView(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "strided", ctx, twophase.New())
	// Blocks of 4 bytes every 12.
	v := datatype.View{Filetype: datatype.Vector{Count: 3, BlockLen: 4, Stride: 12}}
	if err := f.SetView(0, v); err != nil {
		t.Fatal(err)
	}
	data := []byte("AAAABBBBCCCC")
	if err := f.WriteAtRank(0, 0, data); err != nil {
		t.Fatal(err)
	}
	raw := fsys.Open("strided")
	got := make([]byte, 28)
	raw.ReadAt(got, 0)
	want := "AAAA\x00\x00\x00\x00\x00\x00\x00\x00BBBB\x00\x00\x00\x00\x00\x00\x00\x00CCCC"
	if string(got) != want {
		t.Fatalf("strided write layout:\n got %q\nwant %q", got, want)
	}
}

func TestSieveMatchesDirect(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "sieve", ctx, twophase.New())
	v := datatype.View{Disp: 3, Filetype: datatype.Vector{Count: 4, BlockLen: 3, Stride: 10}}
	if err := f.SetView(0, v); err != nil {
		t.Fatal(err)
	}
	data := []byte("abcdefghijkl")
	if err := f.SieveWriteAtRank(0, 0, data); err != nil {
		t.Fatal(err)
	}
	direct := make([]byte, len(data))
	if err := f.ReadAtRank(0, 0, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, data) {
		t.Fatalf("sieve write + direct read = %q", direct)
	}
	sieved := make([]byte, len(data))
	if err := f.SieveReadAtRank(0, 0, sieved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sieved, data) {
		t.Fatalf("sieve read = %q", sieved)
	}
	// Empty sieve ops are no-ops.
	if err := f.SieveReadAtRank(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.SieveWriteAtRank(0, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanOnly(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "planonly", ctx, core.New())
	reqs := []collio.RankRequest{
		{Rank: 0, Extents: []pfs.Extent{{Offset: 0, Length: 1000}}},
		{Rank: 1, Extents: []pfs.Extent{{Offset: 1000, Length: 1000}}},
		{Rank: 2},
		{Rank: 3},
	}
	res, err := f.PlanOnly(reqs, collio.Write)
	if err != nil {
		t.Fatal(err)
	}
	if res.UserBytes != 2000 {
		t.Fatalf("user bytes = %d", res.UserBytes)
	}
	// PlanOnly must not touch the file.
	if f.Size() != 0 {
		t.Fatal("PlanOnly wrote data")
	}
}

func TestCollectiveWithTraceOptions(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "traced", ctx, core.New())
	opt := sim.DefaultOptions()
	opt.Trace = true
	if err := f.SetOptions(opt); err != nil {
		t.Fatal(err)
	}
	args := make([]CollArgs, 4)
	for r := range args {
		if err := f.SetView(r, datatype.View{Disp: int64(r) * 256, Filetype: datatype.Contiguous{Bytes: 1}}); err != nil {
			t.Fatal(err)
		}
		args[r] = CollArgs{Buf: make([]byte, 256)}
	}
	res, err := f.WriteAll(args)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace requested but empty")
	}
}

func TestReadAllOnEmptyFileReturnsZeros(t *testing.T) {
	ctx, fsys := testSetup(t, 4, 2)
	f, _ := Open(fsys, "fresh", ctx, twophase.New())
	args := make([]CollArgs, 4)
	for r := range args {
		if err := f.SetView(r, datatype.View{Disp: int64(r) * 64, Filetype: datatype.Contiguous{Bytes: 1}}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64)
		for i := range buf {
			buf[i] = 0xEE // must be overwritten with zeros
		}
		args[r] = CollArgs{Buf: buf}
	}
	if _, err := f.ReadAll(args); err != nil {
		t.Fatal(err)
	}
	for r := range args {
		for i, b := range args[r].Buf {
			if b != 0 {
				t.Fatalf("rank %d byte %d = %#x, want sparse zero", r, i, b)
			}
		}
	}
}
