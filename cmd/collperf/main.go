// Command collperf runs a coll_perf-style benchmark (the ROMIO test
// program the paper evaluates): a 3-D block-distributed array written to
// and read from a shared file with collective I/O, comparing the
// two-phase baseline with the memory-conscious strategy.
//
//	collperf -np 120 -n 512 -mem 16m -sigma 50m
//
// -n is the cube's edge length in 4-byte elements (the paper runs 2048
// over 120 processes for a 32 GB file).
package main

import (
	"flag"
	"fmt"
	"os"

	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

func main() {
	np := flag.Int("np", 120, "number of processes")
	perNode := flag.Int("ppn", 12, "processes per node")
	n := flag.Int64("n", 512, "array edge length in elements (4 bytes each)")
	memStr := flag.String("mem", "16m", "mean aggregation memory per node")
	sigmaStr := flag.String("sigma", "50m", "availability standard deviation")
	targets := flag.Int("targets", 16, "storage targets (OSTs)")
	seed := flag.Uint64("seed", 42, "seed for the availability variance")
	flag.Parse()

	mem, err := cliutil.ParseSize(*memStr)
	check(err)
	sigma, err := cliutil.ParseSize(*sigmaStr)
	check(err)

	grid, err := workload.DimsCreate(*np)
	check(err)
	c := workload.CollPerf{ArrayDim: *n, ElemBytes: 4, Grid: grid}
	reqs, err := c.Requests()
	check(err)
	fmt.Printf("collperf: %d procs in a %dx%dx%d grid, %d^3 x 4B array, file %s\n",
		*np, grid[0], grid[1], grid[2], *n, cliutil.FormatSize(c.TotalBytes()))

	topo, err := mpi.BlockTopology(*np, *perNode)
	check(err)
	mc := machine.Testbed640().Scaled(topo.Nodes())
	avail := cliutil.DrawAvailability(mc, topo.Nodes(), mem, sigma, *seed)
	params := collio.DefaultParams(mem)
	params.MsgInd = 4 * mem
	params.MsgGroup = 32 * mem
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(*targets),
		Params:  params,
	}

	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		plan, err := s.Plan(ctx, reqs)
		check(err)
		check(plan.Validate(reqs))
		for _, op := range []collio.Op{collio.Write, collio.Read} {
			res, err := collio.Cost(ctx, plan, reqs, op, sim.DefaultOptions())
			check(err)
			fmt.Printf("  %-18s %-5s %10.1f MB/s  (%d groups, %d aggregators, %d paged, %d rounds)\n",
				s.Name(), op, res.Bandwidth/1e6, res.Groups, res.Aggregators,
				res.PagedAggregators, res.MaxRounds)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "collperf:", err)
		os.Exit(1)
	}
}
