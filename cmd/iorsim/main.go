// Command iorsim runs an IOR-style benchmark over the simulated collective
// I/O stack, comparing the two-phase baseline with the memory-conscious
// strategy, in the spirit of LLNL's IOR command line:
//
//	iorsim -np 120 -b 4m -t 4m -s 8 -mem 16m -sigma 50m
//
// -b is the block size per segment per process, -t the transfer size, -s
// the segment count, -mem the mean per-aggregator memory, -sigma the
// node-to-node availability standard deviation. -random shuffles offsets
// (IOR's "Or Random" mode).
package main

import (
	"flag"
	"fmt"
	"os"

	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/pfs"
	"mcio/internal/sim"
	"mcio/internal/twophase"
	"mcio/internal/workload"
)

func main() {
	np := flag.Int("np", 120, "number of processes")
	perNode := flag.Int("ppn", 12, "processes per node")
	blockStr := flag.String("b", "4m", "block size per segment per process")
	transferStr := flag.String("t", "4m", "transfer size")
	segments := flag.Int("s", 8, "segments")
	memStr := flag.String("mem", "16m", "mean aggregation memory per node")
	sigmaStr := flag.String("sigma", "50m", "availability standard deviation")
	targets := flag.Int("targets", 16, "storage targets (OSTs)")
	random := flag.Bool("random", false, "random offsets instead of interleaved")
	seed := flag.Uint64("seed", 42, "seed for variance and random offsets")
	flag.Parse()

	block, err := cliutil.ParseSize(*blockStr)
	check(err)
	transfer, err := cliutil.ParseSize(*transferStr)
	check(err)
	mem, err := cliutil.ParseSize(*memStr)
	check(err)
	sigma, err := cliutil.ParseSize(*sigmaStr)
	check(err)

	w := workload.IOR{
		Ranks:        *np,
		BlockSize:    block,
		TransferSize: transfer,
		Segments:     *segments,
		Random:       *random,
		Seed:         *seed,
	}
	reqs, err := w.Requests()
	check(err)
	fmt.Printf("iorsim: %d procs, %s/proc (%d x %s blocks), file %s, %s\n",
		*np, cliutil.FormatSize(w.BytesPerRank()), *segments, cliutil.FormatSize(block), cliutil.FormatSize(w.TotalBytes()),
		map[bool]string{false: "interleaved", true: "random"}[*random])

	topo, err := mpi.BlockTopology(*np, *perNode)
	check(err)
	mc := machine.Testbed640().Scaled(topo.Nodes())
	avail := cliutil.DrawAvailability(mc, topo.Nodes(), mem, sigma, *seed)
	params := collio.DefaultParams(mem)
	params.MsgInd = 4 * mem
	params.MsgGroup = 32 * mem
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   avail,
		FS:      pfs.DefaultConfig(*targets),
		Params:  params,
	}

	for _, s := range []collio.Strategy{twophase.New(), core.New()} {
		plan, err := s.Plan(ctx, reqs)
		check(err)
		check(plan.Validate(reqs))
		for _, op := range []collio.Op{collio.Write, collio.Read} {
			res, err := collio.Cost(ctx, plan, reqs, op, sim.DefaultOptions())
			check(err)
			fmt.Printf("  %-18s %-5s %10.1f MB/s  (%d groups, %d aggregators, %d paged, %d rounds)\n",
				s.Name(), op, res.Bandwidth/1e6, res.Groups, res.Aggregators,
				res.PagedAggregators, res.MaxRounds)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "iorsim:", err)
		os.Exit(1)
	}
}
