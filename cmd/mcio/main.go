// Command mcio regenerates the tables and figures of "Memory-Conscious
// Collective I/O for Extreme Scale HPC Systems" on the simulated
// substrate.
//
// Usage:
//
//	mcio -exp table1                # the paper's Table 1
//	mcio -exp fig6 -scale 64        # coll_perf sweep (Figure 6)
//	mcio -exp fig7                  # IOR at 120 cores (Figure 7)
//	mcio -exp fig8                  # IOR at 1080 cores (Figure 8)
//	mcio -exp fig2|fig4|fig5        # illustrative traces of the mechanisms
//	mcio -exp ablation              # design-choice ablations
//	mcio -exp faults                # resilience under injected faults
//	mcio -exp all                   # everything above
//
// The observe subcommand runs one figure workload with full
// observability and exports a Chrome/Perfetto trace (simulated time), a
// metrics snapshot (JSON, CSV or Prometheus text), and a collapsed-stack
// flamegraph of the critical path; -faults adds seeded fault injection:
//
//	mcio observe fig7 -trace-out trace.json -metrics-out metrics.json
//	mcio observe fig6 -flame-out fig6.folded
//	mcio observe fig7 -faults 2 -trace-out faulted.json
//
// The bench subcommand runs one experiment and writes its run ledger —
// a stable versioned JSON record of bandwidth, wall time, per-phase
// critical-path blame and host provenance (git commit, go version,
// CPU counts, wall clock and allocator telemetry) — and diff compares
// ledgers, exiting non-zero when the new one regresses beyond tolerance
// (the CI perf gate). diff accepts directories and globs, comparing the
// oldest record against the newest by timestamp; bench refuses to
// overwrite an existing -out file unless -force is given, and -archive
// appends the record to a history directory under an auto-sequenced
// name:
//
//	mcio bench fig6 -out BENCH_fig6.json
//	mcio bench chaos -archive baselines/history
//	mcio diff baselines/BENCH_fig6.json BENCH_fig6.json -tol 0.05
//	mcio diff baselines/history
//
// The trend subcommand is the gate pairwise diff cannot provide: it
// loads a whole record history (mixed v1/v2 records) and classifies
// every entry series as ok, an abrupt step (rolling-median changepoint)
// or slow drift (least-squares slope accumulating past tolerance even
// though each individual run stayed inside it), exiting non-zero on any
// flag; report renders the same analysis as a self-contained HTML page
// with inline SVG sparklines (no JS, no external assets, byte-identical
// across reruns):
//
//	mcio trend baselines/history
//	mcio report baselines/history -out report.html
//
// The chaos subcommand runs a seeded campaign of randomized collective
// operations, checking an invariant battery after every operation and
// exiting non-zero on any violation or undetected corruption. The
// default corruption soak injects silent corruption (message bit flips,
// torn OST writes) through the end-to-end integrity layer; the gray
// campaign adds gray failures (degrading OSTs, flaky NICs, memory
// leaks) and checks the adaptive policy — suspicion, proactive
// failover, circuit breakers, hedged requests — against the static
// baseline, ending with a pinned duel the adaptive plan must win:
//
//	mcio chaos -seed 1 -ops 50
//	mcio chaos -seed 7 -ops 200 -rate 4 -repair=false
//	mcio chaos gray -seed 1 -ops 10
//	mcio chaos -gray -seed 1 -ops 10
//
// The profile subcommand runs one experiment with the sampling timeline
// recorder attached and writes a time-resolved report: per-OST
// busy/queue, per-NIC bytes, per-node memory-pressure and
// staging-buffer series, with every journal event (fault onsets,
// suspicion crossings, breaker transitions, failovers, degradation
// rungs, hedges, repairs) overlaid, plus the saturation analysis —
// which resource saturates first, and when. The HTML report is
// self-contained (inline SVG, no JS) and byte-identical across reruns;
// the gray experiment profiles the pinned gray-failure duel so the
// onset -> suspicion -> breaker reaction chain lands on one timeline:
//
//	mcio profile fig6 -out timeline.html
//	mcio profile gray -out gray.html -csv gray.csv
//	mcio profile fig7 -tick 0.002
//
// -scale divides every byte quantity (1 = paper-exact sizes, slower);
// -seed drives the availability variance and every fault schedule —
// the same seed reproduces a faulted run byte for byte; -details adds
// per-point aggregator accounting to figure output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"mcio/internal/bench"
	"mcio/internal/cliutil"
	"mcio/internal/collio"
	"mcio/internal/core"
	"mcio/internal/machine"
	"mcio/internal/mpi"
	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
	"mcio/internal/obs/history"
	"mcio/internal/obs/timeline"
	"mcio/internal/pfs"
	"mcio/internal/twophase"
)

// observe is the `mcio observe` subcommand: run one figure workload under
// full observability and export the simulated-time trace and the metrics
// snapshot.
//
//	mcio observe fig7 -trace-out trace.json -metrics-out metrics.json
func observe(args []string) error {
	fs := flag.NewFlagSet("observe", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, cliutil.ChoiceUsage("mcio", "observe", bench.ObserveFigures))
		fs.PrintDefaults()
	}
	scale := fs.Int64("scale", bench.DefaultScale, "scale divisor for byte sizes (1 = paper-exact)")
	seed := fs.Uint64("seed", 42, "seed for the availability variance")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent runs; 1 = exact serial legacy path (results are scheduling-invariant either way)")
	mem := fs.Int("mem", 16, "paper-scale mean memory per aggregator, MB")
	opName := fs.String("op", "write", "collective direction: write or read")
	faultRate := fs.Float64("faults", 0, "fault-rate multiplier; > 0 injects seeded faults (crashes, collapses, OST errors) into the run")
	traceOut := fs.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON file here")
	metricsOut := fs.String("metrics-out", "", "write a metrics snapshot here (.csv selects CSV, .prom the Prometheus text format, otherwise JSON)")
	flameOut := fs.String("flame-out", "", "write a collapsed-stack flamegraph of the critical path here (flamegraph.pl / inferno / speedscope input)")
	figure := "fig7"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		figure = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	bench.SetParallelism(*parallel)
	var op collio.Op
	switch *opName {
	case "write":
		op = collio.Write
	case "read":
		op = collio.Read
	default:
		return fmt.Errorf("unknown op %q (want write or read)", *opName)
	}
	var res *bench.ObserveResult
	var err error
	switch {
	case *faultRate < 0:
		return fmt.Errorf("negative fault rate %g (want 0 for a clean run, or a positive MTBF multiplier like 1 or 4)", *faultRate)
	case *faultRate > 0:
		if figure != "fig7" {
			return fmt.Errorf("fault injection observes the fig7 workload; drop the %q argument or use fig7", figure)
		}
		res, err = bench.ObserveFaults(*scale, *seed, *mem, op, *faultRate)
	default:
		res, err = bench.Observe(figure, *scale, *seed, *mem, op)
	}
	if err != nil {
		return err
	}
	fmt.Print(res.Summary)
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(f *os.File) error {
			return obs.WriteChromeTrace(f, res.Obs.Trace)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote trace %s\n", *traceOut)
	}
	if *metricsOut != "" {
		write := func(f *os.File) error { return obs.WriteMetricsJSON(f, res.Obs.Metrics) }
		switch {
		case strings.HasSuffix(*metricsOut, ".csv"):
			write = func(f *os.File) error { return obs.WriteMetricsCSV(f, res.Obs.Metrics) }
		case strings.HasSuffix(*metricsOut, ".prom"):
			write = func(f *os.File) error { return obs.WriteMetricsProm(f, res.Obs.Metrics) }
		}
		if err := writeFile(*metricsOut, write); err != nil {
			return err
		}
		fmt.Printf("wrote metrics %s\n", *metricsOut)
	}
	if *flameOut != "" {
		a := analyze.Analyze(res.Obs.Trace)
		if err := writeFile(*flameOut, func(f *os.File) error {
			return analyze.WriteFlame(f, a)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote flamegraph %s\n", *flameOut)
		for _, p := range a.Processes {
			fmt.Print(p.RenderBlame())
		}
	}
	return nil
}

// runBench is the `mcio bench` subcommand: run one experiment and write
// its run ledger. out is where the ledger goes when -out is empty.
func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, cliutil.ChoiceUsage("mcio", "bench", bench.LedgerExperiments))
		fs.PrintDefaults()
	}
	scale := fs.Int64("scale", bench.DefaultScale, "scale divisor for byte sizes (1 = paper-exact)")
	seed := fs.Uint64("seed", 42, "seed for the availability variance and fault schedules")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent sweep cells; 1 = exact serial legacy path (ledgers are scheduling-invariant either way)")
	outPath := fs.String("out", "", "write the run ledger JSON here (default: stdout)")
	engine := fs.String("engine", "", cliutil.ChoiceFlagUsage("pricing engine override", bench.Engines)+" (default: the experiment's own)")
	force := fs.Bool("force", false, "overwrite an existing -out ledger file")
	archive := fs.String("archive", "", "append the record to this history directory under an auto-generated <seq>-<commit>-<exp>.json name")
	name := "fig6"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Refuse to clobber an existing ledger before spending minutes
	// running the experiment.
	if *outPath != "" && !*force {
		if _, err := os.Stat(*outPath); err == nil {
			return fmt.Errorf("refusing to overwrite existing ledger %s (use -force, or -archive to append to a history directory)", *outPath)
		}
	}
	bench.SetParallelism(*parallel)
	if err := bench.SetEngine(*engine); err != nil {
		return err
	}
	defer bench.SetEngine("")
	rec, err := bench.StampedLedger(name, *scale, *seed)
	if err != nil {
		return err
	}
	if *outPath == "" && *archive == "" {
		return obs.WriteRunRecord(out, rec)
	}
	if *outPath != "" {
		if err := obs.SaveRunRecord(*outPath, rec); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote ledger %s (%d entries)\n", *outPath, len(rec.Entries))
	}
	if *archive != "" {
		path, err := history.Append(*archive, rec)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "archived ledger %s (%d entries)\n", path, len(rec.Entries))
	}
	return nil
}

// runDiff is the `mcio diff` subcommand: compare run ledgers and report
// regressions. Arguments are files, directories or globs; after
// expansion the oldest and newest records by timestamp are compared
// (two explicit files with no timestamps — v1 — keep their given
// order), so `mcio diff baselines/history/` composes directly with the
// archive layout. Returns the process exit code — 0 clean, 1 when the
// new ledger regresses beyond tolerance — plus any hard error.
func runDiff(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcio diff [flags] <old.json new.json | dir | globs...>")
		fs.PrintDefaults()
	}
	tol := fs.Float64("tol", obs.DefaultDiffTol, "relative bandwidth-drop tolerance (0.05 = 5%)")
	wallTol := fs.Float64("wall-tol", 0, "relative wall-time-rise tolerance (default: same as -tol)")
	paths, err := parseInterleaved(fs, args)
	if err != nil {
		return 2, err
	}
	if len(paths) == 0 {
		return 2, fmt.Errorf("diff wants ledger files, directories or globs")
	}
	recs, err := history.LoadArgs(paths, os.Stderr)
	if err != nil {
		return 2, err
	}
	if len(recs) < 2 {
		return 2, fmt.Errorf("diff needs at least two records, got %d", len(recs))
	}
	oldest, newest := recs[0], recs[len(recs)-1]
	if len(recs) > 2 {
		fmt.Fprintf(out, "diffing oldest vs newest of %d records: %s -> %s\n",
			len(recs), oldest.Path, newest.Path)
	}
	wt := *wallTol
	if wt == 0 {
		wt = *tol
	}
	res := obs.DiffRunRecords(oldest.Rec, newest.Rec, obs.DiffOptions{BandwidthTol: *tol, WallTol: wt})
	fmt.Fprint(out, res.Render())
	if len(res.Regressions()) > 0 {
		return 1, nil
	}
	return 0, nil
}

// runTrend is the `mcio trend` subcommand: load a record history and
// classify every tracked series as ok, step or drift. Mirrors `mcio
// diff`'s contract — renders the verdict table and returns exit code 1
// when anything is flagged, 0 clean, 2 on hard errors.
func runTrend(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("trend", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcio trend [flags] <dir | globs | files...>")
		fs.PrintDefaults()
	}
	tol := fs.Float64("tol", obs.DefaultDiffTol, "relative tolerance for both detectors (0.05 = 5%)")
	window := fs.Int("window", 0, "rolling-median changepoint window (default 5)")
	minRuns := fs.Int("min-runs", 0, "fewest records before the drift detector speaks (default 4)")
	paths, err := parseInterleaved(fs, args)
	if err != nil {
		return 2, err
	}
	// A drift slope needs at least two points; 0 keeps the "use the
	// default" convention the flag documents, anything else below 2 is
	// a usage error (exit 2), not a silent no-op gate.
	if *minRuns != 0 && *minRuns < 2 {
		return 2, fmt.Errorf("-min-runs %d is below 2: a drift slope needs at least two records (omit the flag for the default)", *minRuns)
	}
	if len(paths) == 0 {
		return 2, fmt.Errorf("trend wants a history directory, globs or record files")
	}
	recs, err := history.LoadArgs(paths, os.Stderr)
	if err != nil {
		return 2, err
	}
	res := history.Trend(recs, history.Options{Tol: *tol, Window: *window, MinRuns: *minRuns})
	fmt.Fprint(out, res.Render())
	if len(res.Flagged()) > 0 {
		return 1, nil
	}
	return 0, nil
}

// runReport is the `mcio report` subcommand: render the perf history as
// a self-contained HTML page (inline SVG sparklines, no JS, no external
// assets) — deterministic, so the same history always produces the
// same bytes.
func runReport(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mcio report [flags] <dir | globs | files...> -out report.html")
		fs.PrintDefaults()
	}
	outPath := fs.String("out", "report.html", "write the HTML report here")
	tol := fs.Float64("tol", obs.DefaultDiffTol, "relative tolerance for both detectors (0.05 = 5%)")
	window := fs.Int("window", 0, "rolling-median changepoint window (default 5)")
	minRuns := fs.Int("min-runs", 0, "fewest records before the drift detector speaks (default 4)")
	paths, err := parseInterleaved(fs, args)
	if err != nil {
		return err
	}
	if *minRuns != 0 && *minRuns < 2 {
		return fmt.Errorf("-min-runs %d is below 2: a drift slope needs at least two records (omit the flag for the default)", *minRuns)
	}
	if len(paths) == 0 {
		return fmt.Errorf("report wants a history directory, globs or record files")
	}
	recs, err := history.LoadArgs(paths, os.Stderr)
	if err != nil {
		return err
	}
	res := history.Trend(recs, history.Options{Tol: *tol, Window: *window, MinRuns: *minRuns})
	if err := writeFile(*outPath, func(f *os.File) error {
		return history.WriteReport(f, res)
	}); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote report %s (%d records, %d series, %d flagged)\n",
		*outPath, len(res.Records), len(res.Verdicts), len(res.Flagged()))
	return nil
}

// runChaos is the `mcio chaos` subcommand: a seeded chaos campaign
// through the integrity layer — the silent-corruption soak by default,
// the gray-failure campaign with `gray` (or -gray). Campaign names come
// from bench.ChaosCampaigns, the same single-source pattern bench and
// observe use, so new campaigns appear in the usage and error text
// automatically. Returns the process exit code — 0 when every invariant
// held and nothing went undetected, 1 otherwise.
func runChaos(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, cliutil.ChoiceUsage("mcio", "chaos", bench.ChaosCampaigns))
		fs.PrintDefaults()
	}
	seed := fs.Uint64("seed", 1, "campaign seed; the same seed reproduces the campaign byte for byte")
	ops := fs.Int("ops", 50, "randomized collective operations to run")
	rate := fs.Float64("rate", 2, "fault-rate multiplier: silent corruption in the soak, gray faults + corruption in -gray (0 disables injection)")
	repair := fs.Bool("repair", true, "repair detected corruptions (false proves detection of every injection instead)")
	gray := fs.Bool("gray", false, "run the gray-failure campaign (suspicion, adaptive failover, hedging); same as the `gray` campaign argument")
	metricsOut := fs.String("metrics-out", "", "write a metrics snapshot here (.csv selects CSV, .prom the Prometheus text format, otherwise JSON)")
	campaign := bench.ChaosCampaigns[0]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		campaign = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *gray {
		campaign = "gray"
	}
	o := obs.New()
	var (
		summary    string
		violations int
		undetected int
		err        error
	)
	switch campaign {
	case "corruption":
		var rep *bench.ChaosReport
		rep, err = bench.Chaos(bench.ChaosConfig{
			Seed: *seed, Ops: *ops, Rate: *rate, Repair: *repair, Obs: o,
		})
		if err == nil {
			summary, violations, undetected = rep.String(), len(rep.Violations), rep.Undetected()
		}
	case "gray":
		var rep *bench.GrayReport
		rep, err = bench.Gray(bench.GrayConfig{
			Seed: *seed, Ops: *ops, Rate: *rate, Repair: *repair, Obs: o,
		})
		if err == nil {
			summary, violations, undetected = rep.String(), len(rep.Violations), rep.Undetected()
		}
	default:
		return 2, cliutil.UnknownChoice("chaos campaign", campaign, bench.ChaosCampaigns)
	}
	if err != nil {
		return 2, err
	}
	fmt.Fprint(out, summary)
	if *metricsOut != "" {
		write := func(f *os.File) error { return obs.WriteMetricsJSON(f, o.Metrics) }
		switch {
		case strings.HasSuffix(*metricsOut, ".csv"):
			write = func(f *os.File) error { return obs.WriteMetricsCSV(f, o.Metrics) }
		case strings.HasSuffix(*metricsOut, ".prom"):
			write = func(f *os.File) error { return obs.WriteMetricsProm(f, o.Metrics) }
		}
		if err := writeFile(*metricsOut, write); err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "wrote metrics %s\n", *metricsOut)
	}
	if violations > 0 || undetected > 0 {
		return 1, nil
	}
	return 0, nil
}

// runProfile is the `mcio profile` subcommand: run one experiment with
// the sampling timeline recorder attached and write the time-resolved
// report — per-OST/per-NIC/per-node utilization lanes with the fault,
// suspicion, breaker, failover and degradation events overlaid, plus
// the saturation analysis. Experiment names come from
// bench.ProfileExperiments, the same single-source pattern the other
// subcommands use.
func runProfile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, cliutil.ChoiceUsage("mcio", "profile", bench.ProfileExperiments))
		fs.PrintDefaults()
	}
	scale := fs.Int64("scale", bench.DefaultScale, "scale divisor for byte sizes (1 = paper-exact)")
	seed := fs.Uint64("seed", 42, "seed for the availability variance and fault schedules")
	mem := fs.Int("mem", 16, "paper-scale mean memory per aggregator, MB")
	opName := fs.String("op", "write", "collective direction: write or read")
	tick := fs.Float64("tick", 0, "initial sample tick, simulated seconds (0 = automatic; the recorder coarsens it to stay inside the sample budget)")
	outPath := fs.String("out", "", "write the self-contained HTML timeline report here")
	csvPath := fs.String("csv", "", "write every sample bin and journal event as CSV here")
	name := bench.ProfileExperiments[0]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		name = args[0]
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	var op collio.Op
	switch *opName {
	case "write":
		op = collio.Write
	case "read":
		op = collio.Read
	default:
		return fmt.Errorf("unknown op %q (want write or read)", *opName)
	}
	valid := false
	for _, e := range bench.ProfileExperiments {
		if name == e {
			valid = true
			break
		}
	}
	if !valid {
		return cliutil.UnknownChoice("profile experiment", name, bench.ProfileExperiments)
	}
	res, err := bench.Profile(name, *scale, *seed, *mem, op, *tick)
	if err != nil {
		return err
	}
	fmt.Fprint(out, res.Summary)
	if *outPath != "" {
		if err := writeFile(*outPath, func(f *os.File) error {
			return timeline.WriteReport(f, res.Rec, res.Sat)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote timeline %s\n", *outPath)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error {
			return timeline.WriteCSV(f, res.Rec)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote samples %s\n", *csvPath)
	}
	return nil
}

// parseInterleaved parses fs over args accepting flags and positional
// arguments in any order — the stdlib parser stops at the first
// positional, which would reject the documented
// `mcio report <dir> -out report.html` form. Returns the positionals
// in order.
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		args = fs.Args()
		if len(args) == 0 {
			return pos, nil
		}
		pos = append(pos, args[0])
		args = args[1:]
	}
}

// writeFile creates path, runs write on it, and reports the first error.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// allExperiments lists every -exp value, in the order `-exp all` runs
// them — the single source of truth for the -exp usage text and the
// unknown-experiment error.
var allExperiments = []string{
	"table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
	"motivation", "comparison", "random", "plan", "scaling",
	"trajectory", "blame", "trace", "tune", "ablation", "faults",
}

// expChoices is allExperiments plus the "all" meta-experiment — the
// value list the -exp usage text and unknown-experiment error share.
func expChoices() []string {
	return append(append([]string(nil), allExperiments...), "all")
}

// expUsage renders the -exp flag's usage text from allExperiments.
func expUsage() string {
	return cliutil.ChoiceFlagUsage("experiment", expChoices())
}

// unknownExpErr renders the unknown-experiment error from the same list.
func unknownExpErr(name string) error {
	return cliutil.UnknownChoice("experiment", name, expChoices())
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "observe":
			if err := observe(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "mcio observe:", err)
				os.Exit(1)
			}
			return
		case "bench":
			if err := runBench(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mcio bench:", err)
				os.Exit(1)
			}
			return
		case "diff":
			code, err := runDiff(os.Args[2:], os.Stdout)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcio diff:", err)
			}
			os.Exit(code)
		case "trend":
			code, err := runTrend(os.Args[2:], os.Stdout)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcio trend:", err)
			}
			os.Exit(code)
		case "report":
			if err := runReport(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mcio report:", err)
				os.Exit(1)
			}
			return
		case "chaos":
			code, err := runChaos(os.Args[2:], os.Stdout)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcio chaos:", err)
			}
			os.Exit(code)
		case "profile":
			if err := runProfile(os.Args[2:], os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "mcio profile:", err)
				os.Exit(1)
			}
			return
		}
	}
	exp := flag.String("exp", "all", expUsage())
	scale := flag.Int64("scale", bench.DefaultScale, "scale divisor for byte sizes (1 = paper-exact)")
	seed := flag.Uint64("seed", 42, "seed for the availability variance")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent experiments and sweep cells; 1 = exact serial legacy path (results are scheduling-invariant either way)")
	details := flag.Bool("details", false, "print per-point aggregator details for figures")
	jsonPath := flag.String("json", "", "also save figure results as JSON to this path (fig6/fig7/fig8)")
	flag.Parse()
	bench.SetParallelism(*parallel)

	// Experiments render into a writer, not straight to stdout, so `-exp
	// all` can fan whole experiments across the worker pool and still
	// print them in the fixed order — byte-identical to the serial run.
	run := func(name string, w io.Writer) error {
		switch name {
		case "table1":
			fmt.Fprintln(w, "Table 1: potential exascale design vs 2010 HPC design")
			fmt.Fprintln(w, machine.RenderTable1())
		case "fig2":
			return fig2(w)
		case "fig4":
			return fig4(w)
		case "fig5":
			return fig5(w)
		case "fig6", "fig7", "fig8":
			runner := map[string]func(int64, uint64) (*bench.Series, error){
				"fig6": bench.Fig6, "fig7": bench.Fig7, "fig8": bench.Fig8,
			}[name]
			s, err := runner(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, bench.Render(s))
			if *details {
				fmt.Fprintln(w, bench.RenderDetails(s))
			}
			if *jsonPath != "" {
				if err := s.SaveJSON(*jsonPath); err != nil {
					return err
				}
				fmt.Fprintf(w, "saved %s\n", *jsonPath)
			}
		case "random":
			t, err := bench.RandomVsInterleaved(*scale, *seed, 16)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		case "plan":
			return describePlans(w, *scale, *seed)
		case "trajectory":
			t, err := bench.Trajectory(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		case "blame":
			t, err := bench.TrajectoryBlame(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		case "trace":
			out, err := bench.RoundTrace(*scale, *seed, 8)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, out)
		case "comparison":
			t, err := bench.StrategyComparison(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		case "scaling":
			t, err := bench.ScalingSweep(*scale, *seed, 16)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		case "tune":
			return tune(w, *scale, *seed)
		case "motivation":
			t, err := bench.Motivation(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		case "ablation":
			for _, a := range []func(int64, uint64) (*bench.Table, error){
				bench.AblationGrouping,
				bench.AblationNah,
				bench.AblationSigma,
				bench.AblationOverlap,
				bench.AblationAggsPerNode,
			} {
				t, err := a(*scale, *seed)
				if err != nil {
					return err
				}
				fmt.Fprintln(w, t.Render())
			}
		case "faults":
			t, err := bench.FaultSweep(*scale, *seed)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, t.Render())
		default:
			return unknownExpErr(name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = allExperiments
	}
	outs := make([]string, len(names))
	errs := make([]error, len(names))
	bench.ForEach(len(names), func(i int) error {
		var b strings.Builder
		errs[i] = run(names[i], &b)
		outs[i] = b.String()
		return errs[i]
	})
	for i := range names {
		// Output computed before the first error still prints, as in the
		// serial run; the first error (by experiment order) then exits.
		os.Stdout.WriteString(outs[i])
		if errs[i] != nil {
			fmt.Fprintln(os.Stderr, "mcio:", errs[i])
			os.Exit(1)
		}
	}
}

// fig2 reproduces the paper's Figure 2 as a trace: six processes, two
// aggregators, classic two-phase collective read.
func fig2(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: two-phase collective I/O (6 processes, 2 aggregator nodes)")
	topo, err := mpi.BlockTopology(6, 3)
	if err != nil {
		return err
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   []int64{mc.MemPerNode, mc.MemPerNode},
		FS:      pfs.DefaultConfig(4),
		Params:  collio.DefaultParams(256),
	}
	var reqs []collio.RankRequest
	for r := 0; r < 6; r++ {
		reqs = append(reqs, collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * 512, Length: 512}},
		})
	}
	plan, err := twophase.New().Plan(ctx, reqs)
	if err != nil {
		return err
	}
	for i, d := range plan.Domains {
		fmt.Fprintf(w, "  file domain %d: bytes %d..%d -> aggregator rank %d on node %d\n",
			i, d.Extents[0].Offset, d.Extents[len(d.Extents)-1].End(), d.Aggregator, d.AggNode)
	}
	fmt.Fprintln(w, "  phase 1 (I/O): each aggregator reads its file domain in buffer-sized rounds")
	fmt.Fprintln(w, "  phase 2 (communication): aggregators scatter the data to the requesting processes")
	fmt.Fprintln(w)
	return nil
}

// fig4 reproduces the paper's Figure 4: aggregation-group division across
// nine processes on three compute nodes with a serial data distribution.
func fig4(w io.Writer) error {
	fmt.Fprintln(w, "Figure 4: aggregation group division (9 processes, 3 nodes, serial distribution)")
	topo, err := mpi.BlockTopology(9, 3)
	if err != nil {
		return err
	}
	mc := machine.Testbed640()
	mc.Nodes = topo.Nodes()
	params := collio.DefaultParams(100)
	params.MsgGroup = 800 // the tentative boundary lands mid-node and is extended
	ctx := &collio.Context{
		Topo:    topo,
		Machine: mc,
		Avail:   []int64{mc.MemPerNode, mc.MemPerNode, mc.MemPerNode},
		FS:      pfs.DefaultConfig(4),
		Params:  params,
	}
	var reqs []collio.RankRequest
	for r := 0; r < 9; r++ {
		reqs = append(reqs, collio.RankRequest{
			Rank:    r,
			Extents: []pfs.Extent{{Offset: int64(r) * 300, Length: 300}},
		})
	}
	for _, g := range core.DivideGroups(ctx, reqs) {
		ranks := make([]string, len(g.Ranks))
		for i, r := range g.Ranks {
			ranks[i] = fmt.Sprintf("P%d", r)
		}
		fmt.Fprintf(w, "  group %d: file [%d..%d) members %s (node boundary respected)\n",
			g.Index, g.Region.Offset, g.Region.End(), strings.Join(ranks, " "))
	}
	fmt.Fprintln(w)
	return nil
}

// fig5 demonstrates the two partition-tree remerge cases of Figures 5a/5b.
func fig5(w io.Writer) error {
	fmt.Fprintln(w, "Figure 5: file-domain remerge on the binary partition tree")
	show := func(t *core.PartitionTree) {
		for i, l := range t.Leaves() {
			fmt.Fprintf(w, "    leaf %d: [%d..%d) %d bytes\n",
				i, l.Extents[0].Offset, l.Extents[len(l.Extents)-1].End(), l.Bytes)
		}
	}
	// Case 5a: sibling is a leaf.
	t5a, err := core.BuildTree([]pfs.Extent{{Offset: 0, Length: 200}}, 100)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "  case 5a — before (sibling is a leaf):")
	show(t5a)
	if _, err := t5a.Remerge(t5a.Root.Left); err != nil {
		return err
	}
	fmt.Fprintln(w, "  after removing the left leaf, its sibling takes over directly:")
	show(t5a)

	// Case 5b: sibling is an internal vertex; DFS finds the adjacent leaf.
	t5b, err := core.BuildTree([]pfs.Extent{{Offset: 0, Length: 400}}, 100)
	if err != nil {
		return err
	}
	if _, err := t5b.Remerge(t5b.Root.Left.Left); err != nil {
		return err
	}
	fmt.Fprintln(w, "  case 5b — before (left leaf's sibling subtree was further split):")
	show(t5b)
	if _, err := t5b.Remerge(t5b.Root.Left); err != nil {
		return err
	}
	fmt.Fprintln(w, "  after removal, the DFS-adjacent leaf of the sibling subtree absorbs it:")
	show(t5b)
	fmt.Fprintln(w)
	return nil
}

// tune runs the parameter auto-tuner (the paper's deferred "optimal
// values" study) on the Figure 7 workload and prints the search table.
func tune(w io.Writer, scale int64, seed uint64) error {
	cfg := bench.Fig7Config(scale, seed)
	cfg.MemMB = []int{16}
	wl, name := bench.Fig7Workload(cfg)
	res, err := bench.TuneWorkload(cfg, wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parameter auto-tuning on %s\n", name)
	fmt.Fprintln(w, res.Render(8))
	return nil
}

// describePlans prints both strategies' placement decisions for the
// Figure 7 workload at 8 MB — the "where did my aggregators go" view.
func describePlans(w io.Writer, scale int64, seed uint64) error {
	cfg := bench.Fig7Config(scale, seed)
	cfg.MemMB = []int{8}
	plans, topo, err := bench.PlansAt(cfg, 8)
	if err != nil {
		return err
	}
	for _, p := range plans {
		fmt.Fprintln(w, p.Describe(topo))
	}
	return nil
}
