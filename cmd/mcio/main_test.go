package main

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mcio/internal/bench"
	"mcio/internal/collio"
	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
)

// testScale keeps CLI-level runs fast; shapes are scale-invariant.
const testScale = 256

func TestExperimentListSingleSource(t *testing.T) {
	// The usage text and the unknown-experiment error must both be
	// derived from allExperiments — every name appears in both.
	usage := expUsage()
	errMsg := unknownExpErr("bogus").Error()
	for _, name := range allExperiments {
		if !strings.Contains(usage, name) {
			t.Errorf("usage text misses experiment %q: %s", name, usage)
		}
		if !strings.Contains(errMsg, name) {
			t.Errorf("unknown-exp error misses experiment %q: %s", name, errMsg)
		}
	}
	if !strings.HasSuffix(usage, ", all") || !strings.Contains(errMsg, ", all") {
		t.Errorf("usage/error must offer 'all': %q / %q", usage, errMsg)
	}
}

func TestRunBenchAndDiffCleanExit(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	for _, p := range []string{oldPath, newPath} {
		var out bytes.Buffer
		err := runBench([]string{"fig7", "-scale", strconv.Itoa(testScale), "-seed", "1", "-out", p}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "wrote ledger") {
			t.Fatalf("bench output missing confirmation: %s", out.String())
		}
	}
	var out bytes.Buffer
	code, err := runDiff([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical ledgers exit %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("diff output missing verdict:\n%s", out.String())
	}
}

func TestRunDiffFlagsInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	rec, err := bench.Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.SaveRunRecord(oldPath, rec); err != nil {
		t.Fatal(err)
	}
	// Inject a >5% bandwidth drop into the first entry.
	rec.Entries[0].BandwidthMBps *= 0.90
	if err := obs.SaveRunRecord(newPath, rec); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runDiff([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("regressed ledger exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("diff output missing REGRESSION marker:\n%s", out.String())
	}
	// The same drop passes under a 15% tolerance.
	out.Reset()
	code, err = runDiff([]string{"-tol", "0.15", oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("10%% drop under 15%% tolerance exit %d, want 0:\n%s", code, out.String())
	}
}

func TestRunDiffErrors(t *testing.T) {
	var out bytes.Buffer
	if code, err := runDiff([]string{"only-one.json"}, &out); code != 2 || err == nil {
		t.Fatalf("one-arg diff: code %d err %v, want 2 and error", code, err)
	}
	if code, err := runDiff([]string{"nope-a.json", "nope-b.json"}, &out); code != 2 || err == nil {
		t.Fatalf("missing-file diff: code %d err %v, want 2 and error", code, err)
	}
}

// driftArchive writes a synthetic 10-record history in which every
// entry's bandwidth decays 1% per run — each adjacent step inside the
// 5% pairwise tolerance, the accumulated fall far beyond it.
func driftArchive(t *testing.T, dir string) []string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var paths []string
	bw := 1000.0
	for i := 0; i < 10; i++ {
		rec := &obs.RunRecord{
			Name:      "fig6",
			UnixNanos: int64(i+1) * 1_000_000_000,
			Entries: []obs.RunEntry{
				{Name: "memory-conscious/write/mem=16", BandwidthMBps: bw, WallSeconds: 1e6 / bw},
				{Name: "control/steady", BandwidthMBps: 500, WallSeconds: 2},
			},
		}
		p := filepath.Join(dir, fmt.Sprintf("%05d-test-fig6.json", i+1))
		if err := obs.SaveRunRecord(p, rec); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
		bw *= 0.99
	}
	return paths
}

// TestTrendCatchesDriftPairwiseDiffMisses is the tentpole acceptance
// demo at the CLI level: on a 10-record series with an injected
// 1%-per-run bandwidth drift, `mcio diff` between every adjacent pair
// exits zero at the default tolerance, while `mcio trend` over the same
// directory exits non-zero and names the drifting entries.
func TestTrendCatchesDriftPairwiseDiffMisses(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	paths := driftArchive(t, dir)

	for i := 1; i < len(paths); i++ {
		var out bytes.Buffer
		code, err := runDiff([]string{paths[i-1], paths[i]}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if code != 0 {
			t.Fatalf("adjacent diff %d exited %d; the 1%% step must pass the 5%% pairwise gate:\n%s",
				i, code, out.String())
		}
	}

	var out bytes.Buffer
	code, err := runTrend([]string{dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("trend over drifting history exited %d, want 1:\n%s", code, out.String())
	}
	for _, must := range []string{"DRIFT", "memory-conscious/write/mem=16"} {
		if !strings.Contains(out.String(), must) {
			t.Errorf("trend output does not name the drift (%q missing):\n%s", must, out.String())
		}
	}
	if strings.Contains(out.String(), "control/steady      ") && strings.Contains(out.String(), "DRIFT: control") {
		t.Errorf("steady control entry flagged:\n%s", out.String())
	}

	// The clean prefix of the same history (first 4 records, 3% total
	// drift) stays under tolerance: exit 0.
	out.Reset()
	code, err = runTrend(paths[:4], &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("trend over the sub-tolerance prefix exited %d, want 0:\n%s", code, out.String())
	}
}

// TestRunDiffDirectoryNewestVsOldest: diff over a directory compares
// the oldest record with the newest by timestamp, not by file name.
func TestRunDiffDirectoryNewestVsOldest(t *testing.T) {
	dir := t.TempDir()
	// File names deliberately out of time order.
	mk := func(file string, nanos int64, bw float64) {
		rec := &obs.RunRecord{Name: "fig6", UnixNanos: nanos,
			Entries: []obs.RunEntry{{Name: "e", BandwidthMBps: bw}}}
		if err := obs.SaveRunRecord(filepath.Join(dir, file), rec); err != nil {
			t.Fatal(err)
		}
	}
	mk("b-newest.json", 300, 2000) // newest: bandwidth doubled — an improvement
	mk("a-middle.json", 200, 500)  // a middle dip that must not be compared
	mk("c-oldest.json", 100, 1000)
	var out bytes.Buffer
	code, err := runDiff([]string{dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("oldest->newest is an improvement, exit %d want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "c-oldest.json -> ") || !strings.Contains(out.String(), "b-newest.json") {
		t.Errorf("diff did not pick oldest vs newest by timestamp:\n%s", out.String())
	}
}

func TestRunBenchRefusesOverwriteWithoutForce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"name":"old","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := runBench([]string{"fig7", "-scale", strconv.Itoa(testScale), "-out", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("bench overwrote an existing ledger without -force (err=%v)", err)
	}
	if b, _ := os.ReadFile(path); !strings.Contains(string(b), `"old"`) {
		t.Fatal("existing ledger was clobbered by the refused run")
	}
	out.Reset()
	if err := runBench([]string{"fig7", "-scale", strconv.Itoa(testScale), "-out", path, "-force"}, &out); err != nil {
		t.Fatal(err)
	}
	rec, err := obs.LoadRunRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "fig7" || rec.Version != obs.RunRecordVersion || rec.UnixNanos == 0 || rec.Host == nil {
		t.Fatalf("forced ledger missing v2 provenance: %+v", rec)
	}
}

// TestBenchArchiveChaosFlowsThroughTrendAndReport covers the archive
// satellite and the chaos acceptance criterion end to end: two chaos
// bench runs archived under sequenced names load back, pass the trend
// gate (identical seeds — steady metrics), and render to a
// byte-identical report across reruns.
func TestBenchArchiveChaosFlowsThroughTrendAndReport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "history")
	var out bytes.Buffer
	for i := 0; i < 2; i++ {
		out.Reset()
		if err := runBench([]string{"chaos", "-seed", "1", "-archive", dir}, &out); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "archived ledger") {
			t.Fatalf("bench -archive output missing confirmation: %s", out.String())
		}
	}
	entries, err := filepath.Glob(filepath.Join(dir, "0000*-*-chaos.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("archive names wrong: %v, %v", entries, err)
	}

	out.Reset()
	code, err := runTrend([]string{dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical chaos records flagged by trend:\n%s", out.String())
	}
	for _, must := range []string{"chaos/detection", "chaos/repair", "chaos/degradation", "detected"} {
		if !strings.Contains(out.String(), must) {
			t.Errorf("trend table missing chaos series %q:\n%s", must, out.String())
		}
	}

	render := func(name string) []byte {
		p := filepath.Join(t.TempDir(), name)
		var rout bytes.Buffer
		if err := runReport([]string{"-out", p, dir}, &rout); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := render("a.html")
	if !bytes.Equal(first, render("b.html")) {
		t.Fatal("report bytes differ across reruns on the same history")
	}
	if !bytes.Contains(first, []byte("chaos/detection")) || !bytes.Contains(first, []byte("<svg")) {
		t.Error("report missing chaos sparklines")
	}
}

// TestObserveFlameSumsToWall is the acceptance check: the collapsed
// stacks exported for a figure run sum (within rounding) to the run's
// simulated wall time per process.
func TestObserveFlameSumsToWall(t *testing.T) {
	res, err := bench.Observe("fig6", testScale, 42, 16, collio.Write)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze.Analyze(res.Obs.Trace)
	flamePath := filepath.Join(t.TempDir(), "fig6.folded")
	f, err := os.Create(flamePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := analyze.WriteFlame(f, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(flamePath)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]int64{} // process frame -> µs
	lineCount := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		frames := strings.Split(line[:sp], ";")
		us, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		totals[frames[0]] += us
		lineCount[frames[0]]++
	}
	if len(totals) == 0 {
		t.Fatal("flame file empty")
	}
	for _, p := range a.Processes {
		name := strings.ReplaceAll(p.Name, " ", "_")
		got := totals[name]
		want := p.Wall * 1e6
		if math.Abs(float64(got)-want) > float64(lineCount[name])+1 {
			t.Errorf("process %s: flame total %d µs, wall %.3f µs — off beyond rounding", p.Name, got, want)
		}
	}
}
