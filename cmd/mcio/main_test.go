package main

import (
	"bufio"
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mcio/internal/bench"
	"mcio/internal/collio"
	"mcio/internal/obs"
	"mcio/internal/obs/analyze"
)

// testScale keeps CLI-level runs fast; shapes are scale-invariant.
const testScale = 256

func TestExperimentListSingleSource(t *testing.T) {
	// The usage text and the unknown-experiment error must both be
	// derived from allExperiments — every name appears in both.
	usage := expUsage()
	errMsg := unknownExpErr("bogus").Error()
	for _, name := range allExperiments {
		if !strings.Contains(usage, name) {
			t.Errorf("usage text misses experiment %q: %s", name, usage)
		}
		if !strings.Contains(errMsg, name) {
			t.Errorf("unknown-exp error misses experiment %q: %s", name, errMsg)
		}
	}
	if !strings.HasSuffix(usage, ", all") || !strings.Contains(errMsg, ", all") {
		t.Errorf("usage/error must offer 'all': %q / %q", usage, errMsg)
	}
}

func TestRunBenchAndDiffCleanExit(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	for _, p := range []string{oldPath, newPath} {
		var out bytes.Buffer
		err := runBench([]string{"fig7", "-scale", strconv.Itoa(testScale), "-seed", "1", "-out", p}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "wrote ledger") {
			t.Fatalf("bench output missing confirmation: %s", out.String())
		}
	}
	var out bytes.Buffer
	code, err := runDiff([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical ledgers exit %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("diff output missing verdict:\n%s", out.String())
	}
}

func TestRunDiffFlagsInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	rec, err := bench.Ledger("fig7", testScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.SaveRunRecord(oldPath, rec); err != nil {
		t.Fatal(err)
	}
	// Inject a >5% bandwidth drop into the first entry.
	rec.Entries[0].BandwidthMBps *= 0.90
	if err := obs.SaveRunRecord(newPath, rec); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runDiff([]string{oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("regressed ledger exit %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("diff output missing REGRESSION marker:\n%s", out.String())
	}
	// The same drop passes under a 15% tolerance.
	out.Reset()
	code, err = runDiff([]string{"-tol", "0.15", oldPath, newPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("10%% drop under 15%% tolerance exit %d, want 0:\n%s", code, out.String())
	}
}

func TestRunDiffErrors(t *testing.T) {
	var out bytes.Buffer
	if code, err := runDiff([]string{"only-one.json"}, &out); code != 2 || err == nil {
		t.Fatalf("one-arg diff: code %d err %v, want 2 and error", code, err)
	}
	if code, err := runDiff([]string{"nope-a.json", "nope-b.json"}, &out); code != 2 || err == nil {
		t.Fatalf("missing-file diff: code %d err %v, want 2 and error", code, err)
	}
}

// TestObserveFlameSumsToWall is the acceptance check: the collapsed
// stacks exported for a figure run sum (within rounding) to the run's
// simulated wall time per process.
func TestObserveFlameSumsToWall(t *testing.T) {
	res, err := bench.Observe("fig6", testScale, 42, 16, collio.Write)
	if err != nil {
		t.Fatal(err)
	}
	a := analyze.Analyze(res.Obs.Trace)
	flamePath := filepath.Join(t.TempDir(), "fig6.folded")
	f, err := os.Create(flamePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := analyze.WriteFlame(f, a); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(flamePath)
	if err != nil {
		t.Fatal(err)
	}
	totals := map[string]int64{} // process frame -> µs
	lineCount := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		frames := strings.Split(line[:sp], ";")
		us, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		totals[frames[0]] += us
		lineCount[frames[0]]++
	}
	if len(totals) == 0 {
		t.Fatal("flame file empty")
	}
	for _, p := range a.Processes {
		name := strings.ReplaceAll(p.Name, " ", "_")
		got := totals[name]
		want := p.Wall * 1e6
		if math.Abs(float64(got)-want) > float64(lineCount[name])+1 {
			t.Errorf("process %s: flame total %d µs, wall %.3f µs — off beyond rounding", p.Name, got, want)
		}
	}
}
