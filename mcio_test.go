package mcio

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Ranks: 12, RanksPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Ranks() != 12 || sys.Nodes() != 3 {
		t.Fatalf("ranks/nodes = %d/%d", sys.Ranks(), sys.Nodes())
	}
	if sys.NodeOf(5) != 1 {
		t.Fatalf("NodeOf(5) = %d", sys.NodeOf(5))
	}
	if len(sys.AvailableMemory()) != 3 {
		t.Fatal("availability vector size")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	small := Testbed640()
	small.Nodes = 1
	if _, err := NewSystem(SystemConfig{Ranks: 12, RanksPerNode: 4, Machine: small}); err == nil {
		t.Fatal("undersized machine accepted")
	}
	// RanksPerNode defaults to 1.
	sys, err := NewSystem(SystemConfig{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Nodes() != 3 {
		t.Fatalf("default placement nodes = %d", sys.Nodes())
	}
}

func TestCollectiveRoundTripBothStrategies(t *testing.T) {
	for _, strategy := range []Strategy{TwoPhase(), MemoryConscious()} {
		sys, err := NewSystem(SystemConfig{Ranks: 6, RanksPerNode: 2, Params: DefaultParams(256)})
		if err != nil {
			t.Fatal(err)
		}
		f, err := sys.Open("data", strategy)
		if err != nil {
			t.Fatal(err)
		}
		// Each rank owns 100 bytes, laid out by displacement.
		for r := 0; r < 6; r++ {
			if err := f.SetView(r, View{Disp: int64(r) * 100, Filetype: Contiguous{Bytes: 1}}); err != nil {
				t.Fatal(err)
			}
		}
		args := make([]CollArgs, 6)
		for r := range args {
			buf := make([]byte, 100)
			for i := range buf {
				buf[i] = byte(r + i)
			}
			args[r] = CollArgs{Buf: buf}
		}
		res, err := f.WriteAll(args)
		if err != nil {
			t.Fatalf("%s: %v", strategy.Name(), err)
		}
		if res.Bandwidth <= 0 || res.UserBytes != 600 {
			t.Fatalf("%s: result %+v", strategy.Name(), res)
		}
		read := make([]CollArgs, 6)
		for r := range read {
			read[r] = CollArgs{Buf: make([]byte, 100)}
		}
		if _, err := f.ReadAll(read); err != nil {
			t.Fatal(err)
		}
		for r := range read {
			if !bytes.Equal(read[r].Buf, args[r].Buf) {
				t.Fatalf("%s: rank %d mismatch", strategy.Name(), r)
			}
		}
	}
}

func TestApplyMemoryVariance(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Ranks: 24, RanksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := sys.ApplyMemoryVariance(1<<30, 1<<29, 0, 7)
	if len(a) != 12 {
		t.Fatalf("availability size %d", len(a))
	}
	distinct := map[int64]bool{}
	for _, v := range a {
		distinct[v] = true
	}
	if len(distinct) < 6 {
		t.Fatal("variance produced too few distinct values")
	}
	b := sys.ApplyMemoryVariance(1<<30, 1<<29, 0, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the draw")
		}
	}
}

func TestSetAvailableMemory(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Ranks: 4, RanksPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetAvailableMemory([]int64{1}); err == nil {
		t.Fatal("short vector accepted")
	}
	if err := sys.SetAvailableMemory([]int64{100, 200}); err != nil {
		t.Fatal(err)
	}
	got := sys.AvailableMemory()
	if got[0] != 100 || got[1] != 200 {
		t.Fatalf("availability = %v", got)
	}
}

func TestPlanInspection(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Ranks: 6, RanksPerNode: 2, Params: DefaultParams(1 << 10)})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []RankRequest{
		{Rank: 0, Extents: []Extent{{Offset: 0, Length: 4096}}},
		{Rank: 3, Extents: []Extent{{Offset: 4096, Length: 4096}}},
	}
	plan, err := sys.Plan(MemoryConscious(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalBytes() != 8192 {
		t.Fatalf("plan bytes = %d", plan.TotalBytes())
	}
	if len(plan.Aggregators()) == 0 {
		t.Fatal("no aggregators")
	}
}

func TestTable1Export(t *testing.T) {
	s := Table1()
	for _, want := range []string{"System Peak", "Total Concurrency", "4444"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestWorkloadReexports(t *testing.T) {
	w := IOR{Ranks: 4, BlockSize: 64, TransferSize: 64, Segments: 2}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatal("IOR re-export broken")
	}
	c := CollPerf{ArrayDim: 8, ElemBytes: 4, Grid: [3]int{2, 2, 1}}
	if _, err := c.Requests(); err != nil {
		t.Fatal("CollPerf re-export broken")
	}
}

func TestMachinePresets(t *testing.T) {
	for _, cfg := range []MachineConfig{Testbed640(), Petascale2010(), Exascale2018()} {
		if err := cfg.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestAutoTune(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Ranks: 24, RanksPerNode: 4, Params: DefaultParams(256 << 10)})
	if err != nil {
		t.Fatal(err)
	}
	sys.ApplyMemoryVariance(256<<10, 1<<20, 32<<10, 3)
	w := IOR{Ranks: 24, BlockSize: 256 << 10, TransferSize: 256 << 10, Segments: 4}
	reqs, err := w.Requests()
	if err != nil {
		t.Fatal(err)
	}
	before := sys.Params()
	res, err := sys.AutoTune(reqs, Write)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations == 0 || res.Best.Bandwidth <= 0 {
		t.Fatalf("degenerate tune result: %+v", res.Best)
	}
	after := sys.Params()
	if after != res.Best.Params {
		t.Fatal("AutoTune must install the best parameters")
	}
	if after.CollBufSize != before.CollBufSize {
		t.Fatal("AutoTune must keep the collective buffer size")
	}
}
